//! DAG execution over a shared simulated cluster.
//!
//! One engine per directed node pair, all over one [`SimCluster`] (one
//! virtual clock, shared NIC/core/switch state). The runner is a
//! dataflow executor: a hop is posted on its pair's engine the moment its
//! dependencies are delivered, so each hop flows through the full engine
//! decision path — rail selection, equal-completion splitting, eager/rdv
//! choice, packing — under whatever contention the rest of the schedule
//! creates.
//!
//! The clock is advanced with [`SimCluster::pump_one`], one calendar event
//! at a time; between steps every engine whose inbox filled is drained.
//! Letting any single engine's `poll` free-run the clock instead would
//! post dependent hops *after* the clock passed their true ready time,
//! deforming the schedule.

use crate::profiles::ProfileBank;
use crate::repair::{self, HopRole};
use crate::schedule::{Algorithm, Collective, Hop, HopDag};
use nm_core::driver::cluster::{PairDriver, SimCluster};
use nm_core::engine::{Engine, MsgId};
use nm_core::health::HealthConfig;
use nm_core::strategy::StrategyKind;
use nm_faults::ClusterFaultSchedule;
use nm_model::{SimDuration, SimTime};
use nm_sim::{ClusterSpec, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// A posted hop's deadline is this many times the bank's uncontended hop
/// prediction (floored at [`MIN_HOP_TIMEOUT_US`]), doubling per retry.
const TIMEOUT_FACTOR: f64 = 8.0;

/// Deadline floor: latency-bound barrier tokens predict in single-digit
/// µs, far below honest queueing noise under contention.
const MIN_HOP_TIMEOUT_US: f64 = 2_000.0;

/// Reposts of one hop on its original pair before the hop is written off
/// and left to DAG repair.
const MAX_HOP_RETRIES: u32 = 4;

/// DAG repair rounds per run before the runner declares the operation
/// unrecoverable (each round replans from scratch, so needing many is a
/// sign the fault schedule is killing nodes faster than repair converges).
const MAX_REPAIRS: u64 = 8;

/// Hard bound on the flow-held completion queue: completions the engines
/// reported done whose in-order release is still pending. Growth past this
/// means a flow is wedged, not busy.
const DONE_QUEUE_BOUND: usize = 4096;

/// Per-node sickness EWMA: weight a failure adds, and the decay a success
/// applies. Deterministic (no RNG), bounded in `[0, 1)`.
const SICKNESS_GAIN: f64 = 0.3;
const SICKNESS_DECAY: f64 = 0.9;

/// Failure/repair observability for one executed DAG. All zero on a
/// fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Hops reposted on their original pair after a watchdog teardown.
    pub hops_retried: u64,
    /// Replacement hops grafted by DAG repair (re-rooted trees, ring
    /// splices).
    pub hops_rerouted: u64,
    /// Repair rounds executed.
    pub repairs: u64,
    /// First watchdog teardown to last repair-hop delivery (µs); zero when
    /// nothing needed repair.
    pub repair_latency_us: f64,
    /// Peak length of the flow-held completion queue (satellite: bounded
    /// retry queue).
    pub retry_queue_peak: usize,
    /// Participants with every NIC port down when the run finished.
    pub dead_nodes: usize,
}

/// Outcome of one executed hop DAG.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Virtual time the first hop was posted.
    pub started_at: SimTime,
    /// Virtual time the last hop was delivered.
    pub finished_at: SimTime,
    /// Makespan in microseconds (`finished_at - started_at`).
    pub duration_us: f64,
    /// Per-hop delivery times. The first `dag.hops.len()` entries mirror
    /// the compiled schedule; repair hops extend past them. `None` marks a
    /// hop torn out by the watchdog or cancelled by repair — on a
    /// fault-free run every entry is `Some`.
    pub deliveries: Vec<Option<SimTime>>,
    /// The hops actually executed, indexed like `deliveries`: the compiled
    /// schedule plus any repair hops grafted after it.
    pub hops: Vec<Hop>,
    /// Failure/repair counters.
    pub stats: RunStats,
}

/// Execution state of one hop in the (growing) DAG.
#[derive(Debug, Clone)]
enum HopState {
    /// Dependencies unmet.
    Pending,
    /// Live on its pair's engine, watched by the deadline.
    Posted { id: MsgId, deadline: SimTime, attempts: u32 },
    /// Delivered.
    Done(SimTime),
    /// Torn out (retries exhausted, endpoint dead, or dependency lost);
    /// owed work is replanned by repair, never by resurrecting this index.
    Cancelled,
}

/// A simulated cluster plus the per-pair engines collectives run on.
///
/// Engines are created lazily per directed pair and *kept* across runs:
/// the shared clock is monotonic, so back-to-back collectives on one
/// cluster see each other's residual NIC occupancy, exactly like a real
/// application issuing a sequence of operations.
pub struct CollectiveCluster {
    cluster: SimCluster,
    spec: ClusterSpec,
    engines: BTreeMap<(usize, usize), Engine<PairDriver>>,
    /// Healing machinery armed: the cluster replays a non-empty fault
    /// schedule, engines run with fault tolerance, runs take the watchdog
    /// path. An *empty* schedule keeps the plain path — inertness is a
    /// guarantee, not an optimization.
    healing: bool,
    /// Per-node failure EWMA, persisted across runs so the selector can
    /// penalize schedules through a sick hub. All zeros when healthy.
    sickness: Vec<f64>,
}

impl CollectiveCluster {
    /// A fresh cluster with no engines yet.
    pub fn new(spec: ClusterSpec) -> Self {
        assert!(spec.validate().is_ok(), "invalid cluster spec");
        let cluster = SimCluster::new(spec.clone());
        let nodes = spec.nodes.len();
        CollectiveCluster {
            cluster,
            spec,
            engines: BTreeMap::new(),
            healing: false,
            sickness: vec![0.0; nodes],
        }
    }

    /// A cluster that replays `schedule`: engines get fault tolerance and
    /// runs take the self-healing path (watchdog + DAG repair), unless the
    /// schedule is empty — then this is exactly [`CollectiveCluster::new`]
    /// over a fault-capable transport.
    pub fn with_faults(spec: ClusterSpec, schedule: &ClusterFaultSchedule) -> Result<Self, String> {
        spec.validate()?;
        let cluster = SimCluster::with_faults(spec.clone(), schedule)?;
        let nodes = spec.nodes.len();
        Ok(CollectiveCluster {
            cluster,
            spec,
            engines: BTreeMap::new(),
            healing: !schedule.is_empty(),
            sickness: vec![0.0; nodes],
        })
    }

    /// The cluster spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The underlying shared cluster (switch accounting, clock).
    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.cluster.now()
    }

    /// Whether runs take the self-healing path.
    pub fn healing(&self) -> bool {
        self.healing
    }

    /// Per-node failure EWMA (all zeros when nothing has failed).
    pub fn node_sickness(&self) -> &[f64] {
        &self.sickness
    }

    // nm-analyzer: allow(unbounded-growth) -- one engine per directed node pair, guarded by
    // contains_key; capped at n*(n-1) for an n-node cluster
    fn ensure_engine(&mut self, bank: &mut ProfileBank, src: usize, dst: usize) {
        if !self.engines.contains_key(&(src, dst)) {
            let driver = self.cluster.pair_driver(NodeId(src), NodeId(dst));
            let predictor = bank.predictor_for_pair(src, dst);
            let mut engine = Engine::new(driver, predictor, StrategyKind::HeteroSplit.build())
                .expect("engine construction");
            if self.healing {
                engine = engine
                    .with_fault_tolerance(HealthConfig::default())
                    .expect("default health config");
            }
            self.engines.insert((src, dst), engine);
        }
    }

    /// Executes `dag` to completion, event-ordered. On a healing cluster
    /// hops are deadline-watched and the DAG is repaired around quarantined
    /// rails and dead nodes; otherwise any failure is fatal. Fails when the
    /// simulator's calendar drains while hops are still outstanding (a
    /// malformed schedule), an engine rejects a post, or repair cannot
    /// converge.
    pub fn run(&mut self, bank: &mut ProfileBank, dag: &HopDag) -> Result<RunResult, String> {
        if self.healing {
            self.run_resilient(bank, dag)
        } else {
            self.run_clean(bank, dag)
        }
    }

    fn run_clean(&mut self, bank: &mut ProfileBank, dag: &HopDag) -> Result<RunResult, String> {
        dag.check()?;
        let started_at = self.cluster.now();

        for hop in &dag.hops {
            self.ensure_engine(bank, hop.src, hop.dst);
        }

        // Dataflow state: per-hop unmet-dependency counts and the reverse
        // edges used to release dependents on delivery.
        let mut remaining: Vec<usize> = dag.hops.iter().map(|h| h.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); dag.hops.len()];
        for (i, h) in dag.hops.iter().enumerate() {
            for &d in &h.deps {
                dependents[d].push(i);
            }
        }

        let mut posted: BTreeMap<(usize, usize, MsgId), usize> = BTreeMap::new();
        let mut deliveries: Vec<Option<SimTime>> = vec![None; dag.hops.len()];
        let mut outstanding = 0usize;

        let post = |engines: &mut BTreeMap<(usize, usize), Engine<PairDriver>>,
                    posted: &mut BTreeMap<(usize, usize, MsgId), usize>,
                    hop_idx: usize|
         -> Result<(), String> {
            let h = &dag.hops[hop_idx];
            let engine = engines.get_mut(&(h.src, h.dst)).expect("engine exists");
            let id = engine
                .post_send(h.bytes)
                .map_err(|e| format!("hop {hop_idx} ({}->{}): {e}", h.src, h.dst))?;
            posted.insert((h.src, h.dst, id), hop_idx);
            Ok(())
        };

        for (i, r) in remaining.iter().enumerate() {
            if *r == 0 {
                post(&mut self.engines, &mut posted, i)?;
                outstanding += 1;
            }
        }
        debug_assert!(outstanding > 0, "a DAG has at least one root");

        // Ids reported physically delivered whose completion record the
        // engine has not *released* yet: per-flow in-order release may hold
        // a completion until its flow predecessors finish, so
        // `try_completion` can trail `poll`'s done list by a few events.
        let mut done_queue: Vec<(usize, usize, MsgId)> = Vec::new();
        let mut retry_queue_peak = 0usize;
        while outstanding > 0 {
            // Drain phase: deliver every event already routed to an inbox
            // before touching the clock, releasing dependents as hops
            // complete. Newly-posted hops can themselves fill inboxes, so
            // iterate to a fixed point.
            loop {
                // Same-instant deliveries leave several inboxes pending at
                // once, and poll order decides same-instant submit order
                // downstream: engines live in a BTreeMap precisely so this
                // collects in pair order and runs stay bit-deterministic.
                let pending: Vec<(usize, usize)> = self
                    .engines
                    .iter()
                    .filter(|(_, e)| e.transport().pending_events() > 0)
                    .map(|(&k, _)| k)
                    .collect();
                if pending.is_empty() {
                    break;
                }
                for pair in pending {
                    let engine = self.engines.get_mut(&pair).expect("engine exists");
                    let done = engine.poll().map_err(|e| format!("poll {pair:?}: {e}"))?;
                    done_queue.extend(done.into_iter().map(|id| (pair.0, pair.1, id)));
                }
                retry_queue_peak = retry_queue_peak.max(done_queue.len());
                if done_queue.len() > DONE_QUEUE_BOUND {
                    return Err(format!(
                        "flow-held completion queue wedged at {} entries",
                        done_queue.len()
                    ));
                }
                let mut ready: Vec<usize> = Vec::new();
                for key in std::mem::take(&mut done_queue) {
                    let engine = self.engines.get_mut(&(key.0, key.1)).expect("engine exists");
                    let Some(completion) = engine.try_completion(key.2) else {
                        done_queue.push(key);
                        continue;
                    };
                    let hop_idx = *posted.get(&key).ok_or("untracked completion")?;
                    posted.remove(&key);
                    deliveries[hop_idx] = Some(completion.delivered_at);
                    outstanding -= 1;
                    for &dep in &dependents[hop_idx] {
                        remaining[dep] -= 1;
                        if remaining[dep] == 0 {
                            ready.push(dep);
                        }
                    }
                }
                ready.sort_unstable();
                for hop_idx in ready {
                    post(&mut self.engines, &mut posted, hop_idx)?;
                    outstanding += 1;
                }
            }
            if outstanding == 0 {
                break;
            }
            if !self.cluster.pump_one() {
                return Err(format!("calendar drained with {outstanding} hops outstanding"));
            }
        }

        if deliveries.iter().any(Option::is_none) {
            return Err("hop never delivered".into());
        }
        let finished_at = deliveries.iter().flatten().copied().max().unwrap_or(started_at);
        Ok(RunResult {
            started_at,
            finished_at,
            duration_us: finished_at.saturating_since(started_at).as_micros_f64(),
            deliveries,
            hops: dag.hops.clone(),
            stats: RunStats { retry_queue_peak, ..RunStats::default() },
        })
    }

    /// The self-healing execution path: every posted hop carries a
    /// deadline (watchdog), torn-out hops are retried with backoff on
    /// their pair, and when retries cannot meet an obligation — typically
    /// because an endpoint died — the run reaches quiescence and a repair
    /// round replans the owed semantics over the survivors
    /// ([`crate::repair`]), grafting the plan as fresh hop indices
    /// (exactly-once: identities are never reused).
    fn run_resilient(&mut self, bank: &mut ProfileBank, dag: &HopDag) -> Result<RunResult, String> {
        dag.check()?;
        let started_at = self.cluster.now();
        let n = dag.nodes;
        let original_count = dag.hops.len();
        let mut hops: Vec<Hop> = dag.hops.clone();
        let mut roles: Vec<HopRole> =
            hops.iter().enumerate().map(|(i, h)| original_role(dag.algorithm, n, i, h)).collect();
        let mut state: Vec<HopState> = vec![HopState::Pending; hops.len()];
        let mut remaining: Vec<usize> = hops.iter().map(|h| h.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); hops.len()];
        for (i, h) in hops.iter().enumerate() {
            for &d in &h.deps {
                dependents[d].push(i);
            }
        }

        // Semantic completion tracking, fed by every delivery (original or
        // repair) and consumed by the repair planners. The compiled root
        // self-releases: it is never the dst of a release hop.
        let mut released: BTreeSet<usize> = [0].into();
        let mut holders: BTreeSet<usize> = [0].into();
        let mut block_done: BTreeSet<(usize, usize)> = BTreeSet::new();

        let mut posted_ids: BTreeMap<(usize, usize, MsgId), usize> = BTreeMap::new();
        let mut stats = RunStats::default();
        let mut first_failure: Option<SimTime> = None;
        let mut last_repair_delivery: Option<SimTime> = None;
        let mut outstanding = 0usize;
        let mut done_queue: Vec<(usize, usize, MsgId)> = Vec::new();

        for hop in &hops {
            self.ensure_engine(bank, hop.src, hop.dst);
        }
        for (i, &rem) in remaining.iter().enumerate() {
            if rem == 0 {
                self.post_watched(bank, &hops, &mut state, &mut posted_ids, i, 0)?;
                outstanding += 1;
            }
        }

        loop {
            // Event loop until every hop is Done or Cancelled.
            while outstanding > 0 {
                // Drain inboxes to a fixed point, then process completions.
                loop {
                    // BTreeMap iteration is pair-ordered, so poll (and thus
                    // same-instant submit) order is reproducible by
                    // construction.
                    let pending: Vec<(usize, usize)> = self
                        .engines
                        .iter()
                        .filter(|(_, e)| e.transport().pending_events() > 0)
                        .map(|(&k, _)| k)
                        .collect();
                    if pending.is_empty() {
                        break;
                    }
                    for pair in pending {
                        let Some(engine) = self.engines.get_mut(&pair) else { continue };
                        match engine.poll() {
                            Ok(done) => {
                                done_queue.extend(done.into_iter().map(|id| (pair.0, pair.1, id)));
                            }
                            Err(_e) => {
                                // Poisoned engine (e.g. a chunk burned
                                // through every retry): drop it, write off
                                // its live hops; repair re-plans the owed
                                // work and a fresh engine replaces it.
                                self.engines.remove(&pair);
                                let mut victims: Vec<usize> = posted_ids
                                    .iter()
                                    .filter(|((s, d, _), _)| (*s, *d) == pair)
                                    .map(|(_, &i)| i)
                                    .collect();
                                victims.sort_unstable();
                                for i in victims {
                                    posted_ids.retain(|_, &mut v| v != i);
                                    self.note_failure(hops[i].src, hops[i].dst);
                                    first_failure.get_or_insert(self.cluster.now());
                                    outstanding -= cancel_cascade(&mut state, &dependents, i);
                                }
                            }
                        }
                    }
                    stats.retry_queue_peak = stats.retry_queue_peak.max(done_queue.len());
                    if done_queue.len() > DONE_QUEUE_BOUND {
                        return Err(format!(
                            "flow-held completion queue wedged at {} entries",
                            done_queue.len()
                        ));
                    }
                    let mut ready: Vec<usize> = Vec::new();
                    for key in std::mem::take(&mut done_queue) {
                        let Some(engine) = self.engines.get_mut(&(key.0, key.1)) else {
                            continue; // completion of a dropped engine
                        };
                        let Some(completion) = engine.try_completion(key.2) else {
                            done_queue.push(key);
                            continue;
                        };
                        let Some(&hop_idx) = posted_ids.get(&key) else {
                            continue; // hop was written off while held
                        };
                        posted_ids.remove(&key);
                        if !matches!(state[hop_idx], HopState::Posted { .. }) {
                            continue;
                        }
                        let at = completion.delivered_at;
                        state[hop_idx] = HopState::Done(at);
                        outstanding -= 1;
                        self.note_success(hops[hop_idx].src, hops[hop_idx].dst);
                        match roles[hop_idx] {
                            HopRole::Arrive => {}
                            HopRole::Release => {
                                released.insert(hops[hop_idx].dst);
                            }
                            HopRole::Payload => {
                                holders.insert(hops[hop_idx].dst);
                            }
                            HopRole::Block(s, d) => {
                                block_done.insert((s, d));
                            }
                        }
                        if hop_idx >= original_count {
                            last_repair_delivery =
                                Some(last_repair_delivery.map_or(at, |t| t.max(at)));
                        }
                        for &dep in &dependents[hop_idx] {
                            remaining[dep] = remaining[dep].saturating_sub(1);
                            if remaining[dep] == 0 && matches!(state[dep], HopState::Pending) {
                                ready.push(dep);
                            }
                        }
                    }
                    ready.sort_unstable();
                    for hop_idx in ready {
                        self.ensure_engine(bank, hops[hop_idx].src, hops[hop_idx].dst);
                        self.post_watched(bank, &hops, &mut state, &mut posted_ids, hop_idx, 0)?;
                        outstanding += 1;
                    }
                }
                if outstanding == 0 {
                    break;
                }
                if !self.cluster.pump_one() {
                    return Err(format!("calendar drained with {outstanding} hops outstanding"));
                }
                // Watchdog: deadlines are pinned on the calendar, so a
                // wedged hop is noticed the moment the clock passes it.
                let now = self.cluster.now();
                let expired: Vec<usize> = state
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| match s {
                        HopState::Posted { deadline, .. } if *deadline <= now => Some(i),
                        _ => None,
                    })
                    .collect();
                for i in expired {
                    let (id, attempts) = match &state[i] {
                        HopState::Posted { id, attempts, .. } => (*id, *attempts),
                        _ => continue,
                    };
                    let pair = (hops[i].src, hops[i].dst);
                    let Some(engine) = self.engines.get_mut(&pair) else {
                        continue; // engine already dropped; hop was written off
                    };
                    match engine.abandon(id) {
                        Ok(false) => {
                            // Completing (held or already delivered): give
                            // it a fresh deadline and keep waiting.
                            let deadline = now + self.hop_timeout(bank, &hops[i], 0);
                            self.cluster.schedule_wakeup(deadline);
                            state[i] = HopState::Posted { id, deadline, attempts };
                        }
                        Ok(true) => {
                            posted_ids.remove(&(pair.0, pair.1, id));
                            self.note_failure(pair.0, pair.1);
                            first_failure.get_or_insert(now);
                            let endpoint_dead = self.cluster.node_is_down(pair.0)
                                || self.cluster.node_is_down(pair.1);
                            if !endpoint_dead && attempts < MAX_HOP_RETRIES {
                                stats.hops_retried += 1;
                                self.post_watched(
                                    bank,
                                    &hops,
                                    &mut state,
                                    &mut posted_ids,
                                    i,
                                    attempts + 1,
                                )?;
                            } else {
                                outstanding -= cancel_cascade(&mut state, &dependents, i);
                            }
                        }
                        Err(e) => return Err(format!("abandon hop {i} {pair:?}: {e}")),
                    }
                }
            }

            // Quiescent: every hop Done or Cancelled. Check the owed
            // semantics over the survivors; an empty plan is completion.
            let survivors: BTreeSet<usize> =
                (0..n).filter(|&i| !self.cluster.node_is_down(i)).collect();
            stats.dead_nodes = n - survivors.len();
            let plan = match dag.algorithm.collective() {
                Collective::Barrier => repair::plan_barrier(&survivors, &released),
                Collective::Broadcast => repair::plan_bcast(dag.bytes, &survivors, &holders)?,
                Collective::AllToAll => repair::plan_alltoall(dag.bytes, &survivors, &block_done),
            };
            if plan.is_empty() {
                break;
            }
            if stats.repairs >= MAX_REPAIRS {
                return Err(format!(
                    "DAG repair did not converge after {MAX_REPAIRS} rounds \
                     ({} hops still owed)",
                    plan.len()
                ));
            }
            stats.repairs += 1;
            first_failure.get_or_insert(self.cluster.now());
            // The new root (min survivor) self-releases, like the compiled
            // root did.
            if dag.algorithm.collective() == Collective::Barrier {
                if let Some(&root) = survivors.iter().next() {
                    released.insert(root);
                }
            }
            // Graft the plan as fresh indices and post its roots.
            let base = hops.len();
            for rh in &plan {
                let abs_deps: Vec<usize> = rh.deps.iter().map(|&d| d + base).collect();
                hops.push(Hop { src: rh.src, dst: rh.dst, bytes: rh.bytes, deps: abs_deps });
                roles.push(rh.role);
                state.push(HopState::Pending);
                remaining.push(rh.deps.len());
                dependents.push(Vec::new());
                stats.hops_rerouted += 1;
            }
            for (i, hop) in hops.iter().enumerate().skip(base) {
                for &d in &hop.deps {
                    dependents[d].push(i);
                }
            }
            for i in base..hops.len() {
                self.ensure_engine(bank, hops[i].src, hops[i].dst);
                if remaining[i] == 0 {
                    self.post_watched(bank, &hops, &mut state, &mut posted_ids, i, 0)?;
                    outstanding += 1;
                }
            }
        }

        let deliveries: Vec<Option<SimTime>> = state
            .iter()
            .map(|s| match s {
                HopState::Done(at) => Some(*at),
                _ => None,
            })
            .collect();
        if let (Some(begin), Some(end)) = (first_failure, last_repair_delivery) {
            stats.repair_latency_us = end.saturating_since(begin).as_micros_f64();
        }
        let finished_at = deliveries.iter().flatten().copied().max().unwrap_or(started_at);
        Ok(RunResult {
            started_at,
            finished_at,
            duration_us: finished_at.saturating_since(started_at).as_micros_f64(),
            deliveries,
            hops,
            stats,
        })
    }

    /// Posts hop `i` on its pair's engine with a pinned watchdog deadline
    /// (`TIMEOUT_FACTOR ×` the bank's uncontended prediction, doubled per
    /// prior attempt).
    fn post_watched(
        &mut self,
        bank: &mut ProfileBank,
        hops: &[Hop],
        state: &mut [HopState],
        posted_ids: &mut BTreeMap<(usize, usize, MsgId), usize>,
        i: usize,
        attempts: u32,
    ) -> Result<(), String> {
        let h = &hops[i];
        let timeout = self.hop_timeout(bank, h, attempts);
        let engine = self
            .engines
            .get_mut(&(h.src, h.dst))
            .ok_or_else(|| format!("hop {i}: no engine for pair ({}, {})", h.src, h.dst))?;
        let id = engine
            .post_send(h.bytes)
            .map_err(|e| format!("hop {i} ({}->{}): {e}", h.src, h.dst))?;
        let deadline = self.cluster.now() + timeout;
        self.cluster.schedule_wakeup(deadline);
        posted_ids.insert((h.src, h.dst, id), i);
        state[i] = HopState::Posted { id, deadline, attempts };
        Ok(())
    }

    /// Watchdog budget for one hop attempt.
    fn hop_timeout(&mut self, bank: &mut ProfileBank, h: &Hop, attempts: u32) -> SimDuration {
        let base =
            (TIMEOUT_FACTOR * bank.hop_time_us(h.src, h.dst, h.bytes)).max(MIN_HOP_TIMEOUT_US);
        let scaled = base * f64::from(1u32 << attempts.min(16));
        SimDuration::from_micros(scaled as u64)
    }

    fn note_failure(&mut self, src: usize, dst: usize) {
        for node in [src, dst] {
            if let Some(s) = self.sickness.get_mut(node) {
                *s += (1.0 - *s) * SICKNESS_GAIN;
            }
        }
    }

    fn note_success(&mut self, src: usize, dst: usize) {
        for node in [src, dst] {
            if let Some(s) = self.sickness.get_mut(node) {
                *s *= SICKNESS_DECAY;
            }
        }
    }
}

/// Semantic role of a *compiled* hop. Repair hops carry their role
/// explicitly; originals are classified from the algorithm's shape: both
/// barrier generators root at node 0 and only release "upward"
/// (`src < dst`), broadcast hops all carry payload, a pairwise hop *is*
/// its block, and a ring hop at step `k` homes the block that has
/// traveled `k` edges: origin `(dst - k) mod n`.
fn original_role(algorithm: Algorithm, n: usize, idx: usize, hop: &Hop) -> HopRole {
    match algorithm {
        Algorithm::BarrierFlat | Algorithm::BarrierTree => {
            if hop.src < hop.dst {
                HopRole::Release
            } else {
                HopRole::Arrive
            }
        }
        Algorithm::BcastFlat | Algorithm::BcastTree => HopRole::Payload,
        Algorithm::AlltoallPairwise => HopRole::Block(hop.src, hop.dst),
        Algorithm::AlltoallRing => {
            // Ring hops are emitted step-major, n per step, steps 1..n.
            let k = idx / n + 1;
            HopRole::Block((hop.dst + n - k) % n, hop.dst)
        }
    }
}

/// Cancels hop `i` and every transitive dependent that can no longer run
/// (a dep that will never deliver starves the whole downstream cone).
/// Descendants are always `Pending` — a dependent is posted strictly after
/// its deps deliver. Returns how many hops left the outstanding count:
/// only *posted* hops are counted there, so pending descendants cancel
/// without touching it.
fn cancel_cascade(state: &mut [HopState], dependents: &[Vec<usize>], i: usize) -> usize {
    let mut stack = vec![i];
    let mut removed = 0;
    while let Some(j) = stack.pop() {
        let cancellable = match state.get(j) {
            Some(HopState::Pending) => true,
            // Only the cascade root may be live on an engine (and its
            // caller has already torn it out of that engine).
            Some(HopState::Posted { .. }) => j == i,
            _ => false,
        };
        if !cancellable {
            continue;
        }
        if matches!(state.get(j), Some(HopState::Posted { .. })) {
            removed += 1;
        }
        state[j] = HopState::Cancelled;
        if let Some(deps) = dependents.get(j) {
            stack.extend(deps.iter().copied());
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Algorithm;
    use nm_model::builtin;
    use nm_model::units::{KIB, MIB};

    fn setup(n: usize) -> (CollectiveCluster, ProfileBank) {
        let spec = ClusterSpec::homogeneous(n, 4, builtin::paper_testbed());
        (CollectiveCluster::new(spec.clone()), ProfileBank::new(spec))
    }

    #[test]
    fn bcast_flat_runs_to_completion_on_four_nodes() {
        let (mut cc, mut bank) = setup(4);
        let dag = Algorithm::BcastFlat.dag(4, MIB);
        let res = cc.run(&mut bank, &dag).expect("run");
        assert_eq!(res.deliveries.len(), 3);
        assert!(res.duration_us > 0.0);
        assert_eq!(res.finished_at, *res.deliveries.iter().flatten().max().expect("nonempty"));
        assert_eq!(
            res.stats,
            RunStats { retry_queue_peak: res.stats.retry_queue_peak, ..RunStats::default() }
        );
    }

    #[test]
    fn dependencies_execute_in_virtual_time_order() {
        let (mut cc, mut bank) = setup(4);
        let dag = Algorithm::BarrierTree.dag(4, 1);
        let res = cc.run(&mut bank, &dag).expect("run");
        for (i, h) in dag.hops.iter().enumerate() {
            for &d in &h.deps {
                assert!(
                    res.deliveries[i] > res.deliveries[d],
                    "hop {i} delivered before its dependency {d}"
                );
            }
        }
    }

    #[test]
    fn tree_bcast_beats_flat_on_eight_nodes() {
        // Measured (not predicted): the simulated root serializes 7 sends
        // in flat; the tree pipelines across senders.
        let flat = {
            let (mut cc, mut bank) = setup(8);
            cc.run(&mut bank, &Algorithm::BcastFlat.dag(8, 4 * MIB)).expect("run").duration_us
        };
        let tree = {
            let (mut cc, mut bank) = setup(8);
            cc.run(&mut bank, &Algorithm::BcastTree.dag(8, 4 * MIB)).expect("run").duration_us
        };
        assert!(tree < flat, "tree {tree} vs flat {flat}");
    }

    #[test]
    fn back_to_back_runs_share_the_monotonic_clock() {
        let (mut cc, mut bank) = setup(2);
        let dag = Algorithm::BcastFlat.dag(2, 64 * KIB);
        let first = cc.run(&mut bank, &dag).expect("run");
        let second = cc.run(&mut bank, &dag).expect("run");
        assert!(second.started_at >= first.finished_at);
        let rel = (second.duration_us - first.duration_us).abs() / first.duration_us;
        assert!(
            rel < 0.05,
            "quiet-cluster repeats agree: {} vs {}",
            first.duration_us,
            second.duration_us
        );
    }

    #[test]
    fn alltoall_pairwise_completes_under_contention() {
        let (mut cc, mut bank) = setup(4);
        let dag = Algorithm::AlltoallPairwise.dag(4, 256 * KIB);
        let res = cc.run(&mut bank, &dag).expect("run");
        assert_eq!(res.deliveries.len(), 12);
        // All zero-dep hops of round 1 start together; the whole exchange
        // cannot be faster than one hop alone.
        let single = {
            let (mut cc2, mut bank2) = setup(4);
            cc2.run(&mut bank2, &Algorithm::BcastFlat.dag(2, 256 * KIB)).expect("run").duration_us
        };
        assert!(res.duration_us > single);
    }

    #[test]
    fn heterogeneous_cluster_with_partial_rails_still_routes() {
        let mut spec = ClusterSpec::heterogeneous(4, builtin::paper_testbed());
        spec.nodes[2].rails = Some(vec![0]);
        spec.nodes[3].rails = Some(vec![0, 1]);
        let mut cc = CollectiveCluster::new(spec.clone());
        let mut bank = ProfileBank::new(spec);
        let dag = Algorithm::BarrierTree.dag(4, 1);
        let res = cc.run(&mut bank, &dag).expect("run");
        assert_eq!(res.deliveries.len(), dag.hops.len());
    }
}
