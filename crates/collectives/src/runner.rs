//! DAG execution over a shared simulated cluster.
//!
//! One engine per directed node pair, all over one [`SimCluster`] (one
//! virtual clock, shared NIC/core/switch state). The runner is a
//! dataflow executor: a hop is posted on its pair's engine the moment its
//! dependencies are delivered, so each hop flows through the full engine
//! decision path — rail selection, equal-completion splitting, eager/rdv
//! choice, packing — under whatever contention the rest of the schedule
//! creates.
//!
//! The clock is advanced with [`SimCluster::pump_one`], one calendar event
//! at a time; between steps every engine whose inbox filled is drained.
//! Letting any single engine's `poll` free-run the clock instead would
//! post dependent hops *after* the clock passed their true ready time,
//! deforming the schedule.

use crate::profiles::ProfileBank;
use crate::schedule::HopDag;
use nm_core::driver::cluster::{PairDriver, SimCluster};
use nm_core::engine::{Engine, MsgId};
use nm_core::strategy::StrategyKind;
use nm_model::SimTime;
use nm_sim::{ClusterSpec, NodeId};
use std::collections::HashMap;

/// Outcome of one executed hop DAG.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Virtual time the first hop was posted.
    pub started_at: SimTime,
    /// Virtual time the last hop was delivered.
    pub finished_at: SimTime,
    /// Makespan in microseconds (`finished_at - started_at`).
    pub duration_us: f64,
    /// Per-hop delivery times, indexed like `dag.hops`.
    pub deliveries: Vec<SimTime>,
}

/// A simulated cluster plus the per-pair engines collectives run on.
///
/// Engines are created lazily per directed pair and *kept* across runs:
/// the shared clock is monotonic, so back-to-back collectives on one
/// cluster see each other's residual NIC occupancy, exactly like a real
/// application issuing a sequence of operations.
pub struct CollectiveCluster {
    cluster: SimCluster,
    spec: ClusterSpec,
    engines: HashMap<(usize, usize), Engine<PairDriver>>,
}

impl CollectiveCluster {
    /// A fresh cluster with no engines yet.
    pub fn new(spec: ClusterSpec) -> Self {
        assert!(spec.validate().is_ok(), "invalid cluster spec");
        let cluster = SimCluster::new(spec.clone());
        CollectiveCluster { cluster, spec, engines: HashMap::new() }
    }

    /// The cluster spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The underlying shared cluster (switch accounting, clock).
    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.cluster.now()
    }

    fn ensure_engine(&mut self, bank: &mut ProfileBank, src: usize, dst: usize) {
        if !self.engines.contains_key(&(src, dst)) {
            let driver = self.cluster.pair_driver(NodeId(src), NodeId(dst));
            let predictor = bank.predictor_for_pair(src, dst);
            let engine = Engine::new(driver, predictor, StrategyKind::HeteroSplit.build())
                .expect("engine construction");
            self.engines.insert((src, dst), engine);
        }
    }

    /// Executes `dag` to completion, event-ordered. Fails when the
    /// simulator's calendar drains while hops are still outstanding (a
    /// malformed schedule) or an engine rejects a post.
    pub fn run(&mut self, bank: &mut ProfileBank, dag: &HopDag) -> Result<RunResult, String> {
        dag.check()?;
        let started_at = self.cluster.now();

        for hop in &dag.hops {
            self.ensure_engine(bank, hop.src, hop.dst);
        }

        // Dataflow state: per-hop unmet-dependency counts and the reverse
        // edges used to release dependents on delivery.
        let mut remaining: Vec<usize> = dag.hops.iter().map(|h| h.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); dag.hops.len()];
        for (i, h) in dag.hops.iter().enumerate() {
            for &d in &h.deps {
                dependents[d].push(i);
            }
        }

        let mut posted: HashMap<(usize, usize, MsgId), usize> = HashMap::new();
        let mut deliveries: Vec<Option<SimTime>> = vec![None; dag.hops.len()];
        let mut outstanding = 0usize;

        let post = |engines: &mut HashMap<(usize, usize), Engine<PairDriver>>,
                    posted: &mut HashMap<(usize, usize, MsgId), usize>,
                    hop_idx: usize|
         -> Result<(), String> {
            let h = &dag.hops[hop_idx];
            let engine = engines.get_mut(&(h.src, h.dst)).expect("engine exists");
            let id = engine
                .post_send(h.bytes)
                .map_err(|e| format!("hop {hop_idx} ({}->{}): {e}", h.src, h.dst))?;
            posted.insert((h.src, h.dst, id), hop_idx);
            Ok(())
        };

        for (i, r) in remaining.iter().enumerate() {
            if *r == 0 {
                post(&mut self.engines, &mut posted, i)?;
                outstanding += 1;
            }
        }
        debug_assert!(outstanding > 0, "a DAG has at least one root");

        // Ids reported physically delivered whose completion record the
        // engine has not *released* yet: per-flow in-order release may hold
        // a completion until its flow predecessors finish, so
        // `try_completion` can trail `poll`'s done list by a few events.
        let mut done_queue: Vec<(usize, usize, MsgId)> = Vec::new();
        while outstanding > 0 {
            // Drain phase: deliver every event already routed to an inbox
            // before touching the clock, releasing dependents as hops
            // complete. Newly-posted hops can themselves fill inboxes, so
            // iterate to a fixed point.
            loop {
                let pending: Vec<(usize, usize)> = self
                    .engines
                    .iter()
                    .filter(|(_, e)| e.transport().pending_events() > 0)
                    .map(|(&k, _)| k)
                    .collect();
                if pending.is_empty() {
                    break;
                }
                for pair in pending {
                    let engine = self.engines.get_mut(&pair).expect("engine exists");
                    let done = engine.poll().map_err(|e| format!("poll {pair:?}: {e}"))?;
                    done_queue.extend(done.into_iter().map(|id| (pair.0, pair.1, id)));
                }
                let mut ready: Vec<usize> = Vec::new();
                for key in std::mem::take(&mut done_queue) {
                    let engine = self.engines.get_mut(&(key.0, key.1)).expect("engine exists");
                    let Some(completion) = engine.try_completion(key.2) else {
                        done_queue.push(key);
                        continue;
                    };
                    let hop_idx = *posted.get(&key).ok_or("untracked completion")?;
                    posted.remove(&key);
                    deliveries[hop_idx] = Some(completion.delivered_at);
                    outstanding -= 1;
                    for &dep in &dependents[hop_idx] {
                        remaining[dep] -= 1;
                        if remaining[dep] == 0 {
                            ready.push(dep);
                        }
                    }
                }
                ready.sort_unstable();
                for hop_idx in ready {
                    post(&mut self.engines, &mut posted, hop_idx)?;
                    outstanding += 1;
                }
            }
            if outstanding == 0 {
                break;
            }
            if !self.cluster.pump_one() {
                return Err(format!("calendar drained with {outstanding} hops outstanding"));
            }
        }

        let deliveries: Vec<SimTime> = deliveries
            .into_iter()
            .map(|d| d.ok_or("hop never delivered"))
            .collect::<Result<_, _>>()?;
        let finished_at = deliveries.iter().copied().max().unwrap_or(started_at);
        Ok(RunResult {
            started_at,
            finished_at,
            duration_us: finished_at.saturating_since(started_at).as_micros_f64(),
            deliveries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Algorithm;
    use nm_model::builtin;
    use nm_model::units::{KIB, MIB};

    fn setup(n: usize) -> (CollectiveCluster, ProfileBank) {
        let spec = ClusterSpec::homogeneous(n, 4, builtin::paper_testbed());
        (CollectiveCluster::new(spec.clone()), ProfileBank::new(spec))
    }

    #[test]
    fn bcast_flat_runs_to_completion_on_four_nodes() {
        let (mut cc, mut bank) = setup(4);
        let dag = Algorithm::BcastFlat.dag(4, MIB);
        let res = cc.run(&mut bank, &dag).expect("run");
        assert_eq!(res.deliveries.len(), 3);
        assert!(res.duration_us > 0.0);
        assert_eq!(res.finished_at, *res.deliveries.iter().max().expect("nonempty"));
    }

    #[test]
    fn dependencies_execute_in_virtual_time_order() {
        let (mut cc, mut bank) = setup(4);
        let dag = Algorithm::BarrierTree.dag(4, 1);
        let res = cc.run(&mut bank, &dag).expect("run");
        for (i, h) in dag.hops.iter().enumerate() {
            for &d in &h.deps {
                assert!(
                    res.deliveries[i] > res.deliveries[d],
                    "hop {i} delivered before its dependency {d}"
                );
            }
        }
    }

    #[test]
    fn tree_bcast_beats_flat_on_eight_nodes() {
        // Measured (not predicted): the simulated root serializes 7 sends
        // in flat; the tree pipelines across senders.
        let flat = {
            let (mut cc, mut bank) = setup(8);
            cc.run(&mut bank, &Algorithm::BcastFlat.dag(8, 4 * MIB)).expect("run").duration_us
        };
        let tree = {
            let (mut cc, mut bank) = setup(8);
            cc.run(&mut bank, &Algorithm::BcastTree.dag(8, 4 * MIB)).expect("run").duration_us
        };
        assert!(tree < flat, "tree {tree} vs flat {flat}");
    }

    #[test]
    fn back_to_back_runs_share_the_monotonic_clock() {
        let (mut cc, mut bank) = setup(2);
        let dag = Algorithm::BcastFlat.dag(2, 64 * KIB);
        let first = cc.run(&mut bank, &dag).expect("run");
        let second = cc.run(&mut bank, &dag).expect("run");
        assert!(second.started_at >= first.finished_at);
        let rel = (second.duration_us - first.duration_us).abs() / first.duration_us;
        assert!(
            rel < 0.05,
            "quiet-cluster repeats agree: {} vs {}",
            first.duration_us,
            second.duration_us
        );
    }

    #[test]
    fn alltoall_pairwise_completes_under_contention() {
        let (mut cc, mut bank) = setup(4);
        let dag = Algorithm::AlltoallPairwise.dag(4, 256 * KIB);
        let res = cc.run(&mut bank, &dag).expect("run");
        assert_eq!(res.deliveries.len(), 12);
        // All zero-dep hops of round 1 start together; the whole exchange
        // cannot be faster than one hop alone.
        let single = {
            let (mut cc2, mut bank2) = setup(4);
            cc2.run(&mut bank2, &Algorithm::BcastFlat.dag(2, 256 * KIB)).expect("run").duration_us
        };
        assert!(res.duration_us > single);
    }

    #[test]
    fn heterogeneous_cluster_with_partial_rails_still_routes() {
        let mut spec = ClusterSpec::heterogeneous(4, builtin::paper_testbed());
        spec.nodes[2].rails = Some(vec![0]);
        spec.nodes[3].rails = Some(vec![0, 1]);
        let mut cc = CollectiveCluster::new(spec.clone());
        let mut bank = ProfileBank::new(spec);
        let dag = Algorithm::BarrierTree.dag(4, 1);
        let res = cc.run(&mut bank, &dag).expect("run");
        assert_eq!(res.deliveries.len(), dag.hops.len());
    }
}
