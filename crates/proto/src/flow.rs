//! Per-flow sequencing.
//!
//! When one logical flow is striped over several rails, later messages may
//! physically arrive before earlier ones. NewMadeleine guarantees in-order
//! delivery per (peer, tag) flow; [`Sequencer`] enforces it: arrivals are
//! released strictly in sequence-number order, buffering holes.

use crate::error::ProtoError;
use std::collections::BTreeMap;

/// A logical flow identifier: (peer, tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId {
    /// Remote peer index.
    pub peer: u32,
    /// Application tag.
    pub tag: u32,
}

/// Reorders one flow's messages into send order.
///
/// A sequence number can also be [`Sequencer::skip`]ped (the sender
/// cancelled that message): the hole is released as nothing instead of
/// stalling the flow.
///
/// ```
/// use nm_proto::Sequencer;
///
/// let mut seq = Sequencer::new(16);
/// assert!(seq.accept(1, "second").unwrap().is_empty()); // hole at 0
/// assert_eq!(seq.accept(0, "first").unwrap(), vec!["first", "second"]);
/// ```
#[derive(Debug)]
pub struct Sequencer<T> {
    next: u64,
    /// `None` marks a skipped (cancelled) sequence number.
    held: BTreeMap<u64, Option<T>>,
    /// Cap on buffered out-of-order messages (flow-control safety valve).
    window: usize,
    /// Current flow epoch (bumped on failover re-planning); arrivals
    /// stamped with an older epoch are rejected by
    /// [`Self::accept_epoch`].
    epoch: u64,
}

impl<T> Sequencer<T> {
    /// A sequencer expecting sequence numbers from 0, buffering at most
    /// `window` out-of-order messages.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "window must hold at least one message");
        Sequencer { next: 0, held: BTreeMap::new(), window, epoch: 0 }
    }

    /// Next sequence number the flow will release.
    pub fn expected(&self) -> u64 {
        self.next
    }

    /// Number of buffered out-of-order messages.
    pub fn held(&self) -> usize {
        self.held.len()
    }

    /// Current flow epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the flow epoch (failover re-planned in-flight messages).
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Like [`Self::accept`], but the arrival carries the epoch it was sent
    /// under: stragglers from a superseded plan are rejected with
    /// [`ProtoError::StaleEpoch`], and an epoch the flow has never
    /// announced is a sequencing violation.
    pub fn accept_epoch(&mut self, epoch: u64, seq: u64, msg: T) -> Result<Vec<T>, ProtoError> {
        if epoch < self.epoch {
            return Err(ProtoError::StaleEpoch { got: epoch, current: self.epoch });
        }
        if epoch > self.epoch {
            return Err(ProtoError::BadSequence(format!(
                "seq {seq} from future epoch {epoch} (current is {})",
                self.epoch
            )));
        }
        self.accept(seq, msg)
    }

    /// Accepts message `seq` and returns everything now releasable, in
    /// order. Duplicates (already released or already held) and arrivals
    /// beyond the reorder window are rejected.
    pub fn accept(&mut self, seq: u64, msg: T) -> Result<Vec<T>, ProtoError> {
        self.admit(seq, Some(msg))?;
        Ok(self.release())
    }

    /// Marks `seq` as cancelled: the flow no longer waits for it. Returns
    /// whatever became releasable past the hole.
    pub fn skip(&mut self, seq: u64) -> Result<Vec<T>, ProtoError> {
        self.admit(seq, None)?;
        Ok(self.release())
    }

    fn admit(&mut self, seq: u64, slot: Option<T>) -> Result<(), ProtoError> {
        if seq < self.next {
            return Err(ProtoError::BadSequence(format!(
                "duplicate: seq {seq} already released (next is {})",
                self.next
            )));
        }
        if self.held.contains_key(&seq) {
            return Err(ProtoError::BadSequence(format!("duplicate: seq {seq} already held")));
        }
        if seq >= self.next + self.window as u64 {
            return Err(ProtoError::BadSequence(format!(
                "seq {seq} beyond reorder window [{}, {})",
                self.next,
                self.next + self.window as u64
            )));
        }
        self.held.insert(seq, slot);
        Ok(())
    }

    fn release(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(slot) = self.held.remove(&self.next) {
            if let Some(msg) = slot {
                out.push(msg);
            }
            self.next += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn in_order_stream_passes_through() {
        let mut s = Sequencer::new(8);
        for i in 0..5u64 {
            let out = s.accept(i, i).unwrap();
            assert_eq!(out, vec![i]);
        }
        assert_eq!(s.expected(), 5);
        assert_eq!(s.held(), 0);
    }

    #[test]
    fn hole_buffers_until_filled() {
        let mut s = Sequencer::new(8);
        assert!(s.accept(1, "b").unwrap().is_empty());
        assert!(s.accept(2, "c").unwrap().is_empty());
        assert_eq!(s.held(), 2);
        let out = s.accept(0, "a").unwrap();
        assert_eq!(out, vec!["a", "b", "c"]);
        assert_eq!(s.expected(), 3);
    }

    #[test]
    fn duplicates_are_rejected() {
        let mut s = Sequencer::new(8);
        s.accept(0, ()).unwrap();
        assert!(matches!(s.accept(0, ()), Err(ProtoError::BadSequence(_))));
        s.accept(2, ()).unwrap();
        assert!(matches!(s.accept(2, ()), Err(ProtoError::BadSequence(_))));
    }

    #[test]
    fn window_overflow_is_rejected() {
        let mut s = Sequencer::new(4);
        assert!(s.accept(3, ()).is_ok()); // inside [0, 4)
        assert!(matches!(s.accept(4, ()), Err(ProtoError::BadSequence(_))));
    }

    #[test]
    fn skipped_sequences_do_not_stall_the_flow() {
        let mut s = Sequencer::new(8);
        assert!(s.accept(2, "c").unwrap().is_empty());
        // Cancel seq 1 before 0 arrives: nothing releasable yet.
        assert!(s.skip(1).unwrap().is_empty());
        // Seq 0 arrives: 0 releases, the hole at 1 is silently consumed,
        // and 2 follows.
        assert_eq!(s.accept(0, "a").unwrap(), vec!["a", "c"]);
        assert_eq!(s.expected(), 3);
    }

    #[test]
    fn skip_at_the_head_releases_immediately() {
        let mut s = Sequencer::new(8);
        assert!(s.accept(1, "b").unwrap().is_empty());
        assert_eq!(s.skip(0).unwrap(), vec!["b"]);
        // Skipping something already past is a duplicate error.
        assert!(matches!(s.skip(0), Err(ProtoError::BadSequence(_))));
    }

    #[test]
    fn stale_epoch_arrivals_are_rejected() {
        let mut s = Sequencer::new(8);
        assert_eq!(s.accept_epoch(0, 0, "a").unwrap(), vec!["a"]);
        s.bump_epoch();
        assert_eq!(s.epoch(), 1);
        // A straggler sent under the old plan must not enter the flow.
        assert_eq!(
            s.accept_epoch(0, 1, "stale").unwrap_err(),
            ProtoError::StaleEpoch { got: 0, current: 1 }
        );
        // The re-sent copy under the new epoch is accepted normally.
        assert_eq!(s.accept_epoch(1, 1, "b").unwrap(), vec!["b"]);
        // Future epochs the flow never announced are violations.
        assert!(matches!(s.accept_epoch(3, 2, "c"), Err(ProtoError::BadSequence(_))));
    }

    proptest! {
        /// Any permutation within the window releases 0..n in order.
        #[test]
        fn any_window_permutation_releases_in_order(
            n in 1usize..32,
            seed in any::<u64>(),
        ) {
            let mut order: Vec<u64> = (0..n as u64).collect();
            for i in 0..n {
                let j = (seed as usize).wrapping_mul(i * 13 + 7) % n;
                order.swap(i, j);
            }
            let mut s = Sequencer::new(n);
            let mut released = Vec::new();
            for &seq in &order {
                released.extend(s.accept(seq, seq).unwrap());
            }
            prop_assert_eq!(released, (0..n as u64).collect::<Vec<_>>());
            prop_assert_eq!(s.held(), 0);
        }
    }
}
