//! Message chunking and reassembly.
//!
//! The engine's strategies produce a *ratio vector* (e.g. the dichotomy
//! split of paper §II-B gives `[0.58, 0.42]` for Myri+Quadrics); this module
//! turns it into exact byte ranges and rebuilds messages from chunks that
//! arrive out of order — rails race each other, so arrival order is
//! unspecified.

use crate::error::ProtoError;
use bytes::Bytes;

/// One chunk's position within its message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkDesc {
    /// Chunk index (rail order).
    pub index: u32,
    /// Byte offset within the message.
    pub offset: u64,
    /// Chunk length in bytes.
    pub len: u64,
}

/// Splits `total` bytes into chunks proportional to `ratios`.
///
/// Guarantees: chunks tile `[0, total)` exactly (no gaps, no overlap, order
/// preserved); rounding error accumulates into the last non-empty chunk;
/// zero-ratio entries produce zero-length chunks (callers typically filter
/// them). Ratios must be non-negative and sum to ~1.
pub fn split_by_ratios(total: u64, ratios: &[f64]) -> Vec<ChunkDesc> {
    assert!(!ratios.is_empty(), "need at least one ratio");
    assert!(ratios.iter().all(|r| r.is_finite() && *r >= 0.0), "ratios must be >= 0");
    let sum: f64 = ratios.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6, "ratios must sum to 1, got {sum}");

    let mut chunks = Vec::with_capacity(ratios.len());
    let mut offset = 0u64;
    for (i, &r) in ratios.iter().enumerate() {
        let len = if i == ratios.len() - 1 {
            total - offset
        } else {
            ((total as f64 * r).round() as u64).min(total - offset)
        };
        chunks.push(ChunkDesc { index: i as u32, offset, len });
        offset += len;
    }
    // Rounding may leave a tail when later ratios were clamped; the last
    // chunk absorbed it by construction.
    debug_assert_eq!(offset, total);
    chunks
}

/// Splits `total` bytes into `n` near-equal chunks (the iso-split baseline,
/// paper Fig 1b).
pub fn split_evenly(total: u64, n: usize) -> Vec<ChunkDesc> {
    assert!(n >= 1, "need at least one chunk");
    split_by_ratios(total, &vec![1.0 / n as f64; n])
}

/// Rebuilds one message from chunks arriving in any order.
///
/// Duplicate chunks (exact same range, byte-identical content) are
/// tolerated, *counted* in [`Self::duplicates_dropped`], and ignored — a
/// rail retry may deliver twice. A duplicate whose bytes *differ* from the
/// first copy is silent corruption and rejected with
/// [`ProtoError::DuplicateMismatch`]; *overlapping, non-identical* ranges
/// are a protocol violation and rejected.
///
/// The reassembler also carries an *epoch*: failover re-planning bumps it,
/// after which chunks stamped with an older epoch (stragglers from the
/// superseded plan) are rejected with [`ProtoError::StaleEpoch`] instead of
/// being spliced into the new plan's buffer.
///
/// ```
/// use bytes::Bytes;
/// use nm_proto::Reassembler;
///
/// let mut r = Reassembler::new(6);
/// // The fast rail's tail chunk overtakes the slow rail's head chunk.
/// assert!(!r.feed(3, &Bytes::from_static(b"def")).unwrap());
/// assert!(r.feed(0, &Bytes::from_static(b"abc")).unwrap());
/// assert_eq!(&r.into_message()[..], b"abcdef");
/// ```
#[derive(Debug)]
pub struct Reassembler {
    total_len: u64,
    buffer: Vec<u8>,
    /// Received (offset, len) ranges, kept sorted by offset.
    ranges: Vec<(u64, u64)>,
    received: u64,
    /// Exact byte-identical duplicates that were dropped.
    duplicates_dropped: u64,
    /// Current reassembly epoch (bumped on failover re-planning).
    epoch: u64,
}

impl Reassembler {
    /// A reassembler for a message of `total_len` bytes.
    pub fn new(total_len: u64) -> Self {
        assert!(total_len <= usize::MAX as u64, "message exceeds address space");
        Reassembler {
            total_len,
            buffer: vec![0; total_len as usize],
            ranges: Vec::new(),
            received: 0,
            duplicates_dropped: 0,
            epoch: 0,
        }
    }

    /// Exact duplicates dropped so far.
    pub fn duplicates_dropped(&self) -> u64 {
        self.duplicates_dropped
    }

    /// Current reassembly epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the epoch (failover re-planned this message). Chunks fed
    /// via [`Self::feed_epoch`] with an older stamp are rejected from now
    /// on.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Feeds one chunk stamped with the epoch it was planned under. Chunks
    /// from a stale epoch are rejected ([`ProtoError::StaleEpoch`]); a
    /// future epoch the reassembler has never announced is a protocol
    /// violation.
    pub fn feed_epoch(
        &mut self,
        epoch: u64,
        offset: u64,
        data: &Bytes,
    ) -> Result<bool, ProtoError> {
        if epoch < self.epoch {
            return Err(ProtoError::StaleEpoch { got: epoch, current: self.epoch });
        }
        if epoch > self.epoch {
            return Err(ProtoError::BadChunk(format!(
                "chunk from future epoch {epoch} (current is {})",
                self.epoch
            )));
        }
        self.feed(offset, data)
    }

    /// Feeds one chunk. Returns `true` when the message became complete.
    // nm-analyzer: allow(unbounded-growth) -- ranges hold disjoint chunk spans of one message;
    // overlap rejection above caps them at total_len / min-chunk-size
    pub fn feed(&mut self, offset: u64, data: &Bytes) -> Result<bool, ProtoError> {
        let len = data.len() as u64;
        let end = offset
            .checked_add(len)
            .ok_or_else(|| ProtoError::BadChunk("offset overflow".into()))?;
        if end > self.total_len {
            return Err(ProtoError::BadChunk(format!(
                "chunk [{offset}, {end}) exceeds message length {}",
                self.total_len
            )));
        }
        if len == 0 {
            return Ok(self.is_complete());
        }
        // Duplicate or overlap detection against recorded ranges.
        let pos = self.ranges.partition_point(|&(o, _)| o < offset);
        if let Some(&(o, l)) = self.ranges.get(pos) {
            if o == offset && l == len {
                // Exact duplicate range: only byte-identical content may be
                // dropped — differing bytes mean one copy is corrupt, and
                // silently keeping either would mask it.
                // nm-analyzer: allow(index) -- end <= total_len checked above;
                // buffer is allocated at total_len
                if self.buffer[offset as usize..end as usize] != data[..] {
                    return Err(ProtoError::DuplicateMismatch { offset });
                }
                self.duplicates_dropped += 1;
                return Ok(self.is_complete());
            }
            if o < end {
                return Err(ProtoError::BadChunk(format!(
                    "chunk [{offset}, {end}) overlaps [{o}, {})",
                    o + l
                )));
            }
        }
        if pos > 0 {
            // nm-analyzer: allow(index) -- guarded by pos > 0
            let (o, l) = self.ranges[pos - 1];
            if o + l > offset {
                return Err(ProtoError::BadChunk(format!(
                    "chunk [{offset}, {end}) overlaps [{o}, {})",
                    o + l
                )));
            }
        }
        // nm-analyzer: allow(index) -- end <= total_len checked on entry
        self.buffer[offset as usize..end as usize].copy_from_slice(data);
        self.ranges.insert(pos, (offset, len));
        self.received += len;
        Ok(self.is_complete())
    }

    /// True when every byte has arrived.
    pub fn is_complete(&self) -> bool {
        self.received == self.total_len
    }

    /// Bytes received so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Consumes the reassembler and returns the message. Panics if it is
    /// not complete — check [`Self::is_complete`] first.
    pub fn into_message(self) -> Bytes {
        assert!(self.is_complete(), "message incomplete: {}/{}", self.received, self.total_len);
        Bytes::from(self.buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ratio_split_tiles_exactly() {
        let chunks = split_by_ratios(4 * 1024 * 1024, &[0.5812, 0.4188]);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].offset, 0);
        assert_eq!(chunks[0].offset + chunks[0].len, chunks[1].offset);
        assert_eq!(chunks[1].offset + chunks[1].len, 4 * 1024 * 1024);
        // 58.12% of 4 MiB, rounded.
        assert_eq!(chunks[0].len, (4.0 * 1024.0 * 1024.0f64 * 0.5812).round() as u64);
    }

    #[test]
    fn even_split_balances_within_one_byte() {
        let chunks = split_evenly(10, 3);
        let lens: Vec<u64> = chunks.iter().map(|c| c.len).collect();
        assert_eq!(lens.iter().sum::<u64>(), 10);
        assert!(lens.iter().all(|&l| l == 3 || l == 4), "{lens:?}");
    }

    #[test]
    fn tiny_messages_and_extreme_ratios() {
        // 1 byte split "in half": one chunk gets it, tiling holds.
        let chunks = split_by_ratios(1, &[0.5, 0.5]);
        assert_eq!(chunks.iter().map(|c| c.len).sum::<u64>(), 1);
        // Zero-byte message: all chunks empty.
        let chunks = split_by_ratios(0, &[0.3, 0.7]);
        assert!(chunks.iter().all(|c| c.len == 0));
        // A 100%/0% split degenerates to single-rail.
        let chunks = split_by_ratios(1000, &[1.0, 0.0]);
        assert_eq!(chunks[0].len, 1000);
        assert_eq!(chunks[1].len, 0);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn ratios_must_sum_to_one() {
        let _ = split_by_ratios(100, &[0.5, 0.2]);
    }

    #[test]
    fn reassembly_out_of_order() {
        let msg: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let chunks = split_by_ratios(1000, &[0.3, 0.45, 0.25]);
        let mut r = Reassembler::new(1000);
        // Feed in reverse order.
        for c in chunks.iter().rev() {
            let slice =
                Bytes::copy_from_slice(&msg[c.offset as usize..(c.offset + c.len) as usize]);
            r.feed(c.offset, &slice).unwrap();
        }
        assert!(r.is_complete());
        assert_eq!(&r.into_message()[..], &msg[..]);
    }

    #[test]
    fn duplicates_ignored_overlaps_rejected() {
        let mut r = Reassembler::new(100);
        let a = Bytes::from(vec![1u8; 40]);
        assert!(!r.feed(0, &a).unwrap());
        assert!(!r.feed(0, &a).unwrap(), "exact duplicate is ignored");
        assert_eq!(r.received(), 40);
        assert_eq!(r.duplicates_dropped(), 1);
        let bad = Bytes::from(vec![2u8; 30]);
        assert!(matches!(r.feed(20, &bad), Err(ProtoError::BadChunk(_))));
        let tail = Bytes::from(vec![3u8; 60]);
        assert!(r.feed(40, &tail).unwrap());
    }

    /// Regression (satellite): duplicated arrivals must be counted, must not
    /// perturb the byte-exact reassembly, and a duplicate with *different*
    /// bytes must be rejected as corruption rather than silently dropped.
    #[test]
    fn duplicate_arrivals_are_counted_and_byte_exact() {
        let msg: Vec<u8> = (0..500u64).map(|i| (i * 37 % 251) as u8).collect();
        let chunks = split_by_ratios(500, &[0.4, 0.35, 0.25]);
        let mut r = Reassembler::new(500);
        // Feed every chunk twice, interleaved out of order.
        for c in chunks.iter().rev() {
            let slice =
                Bytes::copy_from_slice(&msg[c.offset as usize..(c.offset + c.len) as usize]);
            r.feed(c.offset, &slice).unwrap();
            r.feed(c.offset, &slice).unwrap();
        }
        assert!(r.is_complete());
        assert_eq!(r.duplicates_dropped(), 3, "one duplicate per chunk");
        assert_eq!(r.received(), 500, "duplicates must not inflate received bytes");
        assert_eq!(&r.into_message()[..], &msg[..], "reassembly must stay byte-exact");
    }

    #[test]
    fn mismatched_duplicate_is_corruption() {
        let mut r = Reassembler::new(100);
        let a = Bytes::from(vec![1u8; 40]);
        assert!(!r.feed(0, &a).unwrap());
        let mut tampered = vec![1u8; 40];
        tampered[17] ^= 0x08;
        let err = r.feed(0, &Bytes::from(tampered)).unwrap_err();
        assert_eq!(err, ProtoError::DuplicateMismatch { offset: 0 });
        assert!(err.is_corruption());
        assert_eq!(r.duplicates_dropped(), 0);
    }

    #[test]
    fn stale_epoch_chunks_are_rejected() {
        let mut r = Reassembler::new(100);
        let head = Bytes::from(vec![1u8; 40]);
        assert!(!r.feed_epoch(0, 0, &head).unwrap());
        assert_eq!(r.epoch(), 0);
        // Failover re-plans the remainder: epoch advances.
        r.bump_epoch();
        assert_eq!(r.epoch(), 1);
        // A straggler from the old plan must not splice in.
        let stale = Bytes::from(vec![9u8; 60]);
        assert_eq!(
            r.feed_epoch(0, 40, &stale).unwrap_err(),
            ProtoError::StaleEpoch { got: 0, current: 1 }
        );
        // The replacement from the new plan completes the message.
        let fresh = Bytes::from(vec![3u8; 60]);
        assert!(r.feed_epoch(1, 40, &fresh).unwrap());
        // A chunk claiming an epoch never announced is a protocol violation.
        let mut r2 = Reassembler::new(10);
        assert!(matches!(
            r2.feed_epoch(5, 0, &Bytes::from(vec![0u8; 10])),
            Err(ProtoError::BadChunk(_))
        ));
    }

    #[test]
    fn chunk_past_end_rejected() {
        let mut r = Reassembler::new(10);
        let too_long = Bytes::from(vec![0u8; 11]);
        assert!(r.feed(0, &too_long).is_err());
        let past = Bytes::from(vec![0u8; 2]);
        assert!(r.feed(9, &past).is_err());
    }

    #[test]
    fn empty_message_is_complete_immediately() {
        let r = Reassembler::new(0);
        assert!(r.is_complete());
        assert_eq!(r.into_message().len(), 0);
    }

    proptest! {
        /// Any ratio vector tiles any size exactly.
        #[test]
        fn split_always_tiles(
            total in 0u64..(1 << 30),
            raw in proptest::collection::vec(0.01f64..10.0, 1..6),
        ) {
            let sum: f64 = raw.iter().sum();
            let ratios: Vec<f64> = raw.iter().map(|r| r / sum).collect();
            let chunks = split_by_ratios(total, &ratios);
            prop_assert_eq!(chunks.len(), ratios.len());
            let mut expect_offset = 0u64;
            for (i, c) in chunks.iter().enumerate() {
                prop_assert_eq!(c.index as usize, i);
                prop_assert_eq!(c.offset, expect_offset);
                expect_offset += c.len;
            }
            prop_assert_eq!(expect_offset, total);
        }

        /// Chunks fed in any permutation reassemble to the original bytes.
        #[test]
        fn reassembly_any_permutation(
            total in 1u64..5000,
            raw in proptest::collection::vec(0.05f64..5.0, 1..5),
            seed in any::<u64>(),
        ) {
            let sum: f64 = raw.iter().sum();
            let ratios: Vec<f64> = raw.iter().map(|r| r / sum).collect();
            let msg: Vec<u8> = (0..total).map(|i| (i * 31 % 251) as u8).collect();
            let mut chunks = split_by_ratios(total, &ratios);
            // Deterministic pseudo-shuffle.
            let n = chunks.len();
            for i in 0..n {
                let j = (seed as usize).wrapping_mul(i + 7) % n;
                chunks.swap(i, j);
            }
            let mut r = Reassembler::new(total);
            for c in &chunks {
                let bytes = Bytes::copy_from_slice(
                    &msg[c.offset as usize..(c.offset + c.len) as usize]);
                r.feed(c.offset, &bytes).unwrap();
            }
            prop_assert!(r.is_complete());
            prop_assert_eq!(&r.into_message()[..], &msg[..]);
        }
    }
}
