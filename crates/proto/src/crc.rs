//! CRC32C (Castagnoli) — the checksum behind the wire format's integrity
//! mode.
//!
//! The Castagnoli polynomial (iSCSI, ext4, SCTP) has better error-detection
//! properties on short frames than the legacy IEEE polynomial, which is why
//! NIC-protocol work (the Quadrics per-packet validation lineage) settled
//! on it. This is a table-driven software implementation — no hardware
//! intrinsics, no dependencies — fast enough for the packet sizes the
//! engine frames and fully deterministic across platforms.

/// Reflected CRC32C (Castagnoli) polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Byte-at-a-time lookup table, generated at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        // nm-analyzer: allow(index) -- const-eval loop, i < 256 by the bound
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32C of `data` with the standard framing (init `!0`, final xor `!0`).
pub fn crc32c(data: &[u8]) -> u32 {
    !crc32c_append(!0, data)
}

/// Folds `data` into a raw CRC state (no init/final xor applied). Start
/// from `!0`, feed slices in order, and finish with `!state` — lets a
/// caller checksum logically contiguous bytes held in separate buffers.
pub fn crc32c_append(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &b in data {
        // nm-analyzer: allow(index) -- masked with & 0xFF against a
        // 256-entry table
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // RFC 3720 (iSCSI) appendix test vectors.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn append_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let state = crc32c_append(!0, &data[..split]);
            assert_eq!(!crc32c_append(state, &data[split..]), crc32c(data));
        }
    }

    #[test]
    fn single_bit_flips_are_detected() {
        let data: Vec<u8> = (0..64u8).collect();
        let base = crc32c(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut copy = data.clone();
                copy[i] ^= 1 << bit;
                assert_ne!(crc32c(&copy), base, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
