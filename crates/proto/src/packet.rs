//! Header + payload: the unit a driver puts on a wire.

use crate::crc::crc32c;
use crate::error::ProtoError;
use crate::header::{PacketHeader, PacketKind, HEADER_LEN};
use bytes::{Buf, Bytes, BytesMut};

/// Length of the payload CRC32C trailer in integrity mode.
pub const TRAILER_LEN: usize = 4;

/// A complete packet.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Wire header (its `payload_len` always matches `payload.len()`).
    pub header: PacketHeader,
    /// Payload bytes (zero-copy slice).
    pub payload: Bytes,
    /// Integrity mode: encode stamps the header self-check and appends a
    /// 4-byte CRC32C payload trailer; decode verified both. Off by default
    /// so the legacy wire format stays bit-identical.
    pub integrity: bool,
}

impl Packet {
    /// Builds a packet, stamping `payload_len` from the payload.
    pub fn new(mut header: PacketHeader, payload: Bytes) -> Self {
        assert!(payload.len() <= u32::MAX as usize, "payload too large for header");
        header.payload_len = payload.len() as u32;
        Packet { header, payload, integrity: false }
    }

    /// Switches the packet to integrity framing (checksummed header +
    /// payload trailer on encode).
    pub fn with_integrity(mut self, integrity: bool) -> Self {
        self.integrity = integrity;
        self
    }

    /// A control packet (RTS/CTS) for a message.
    pub fn control(kind: PacketKind, flow: u32, msg_id: u64, total_len: u64) -> Self {
        assert!(matches!(kind, PacketKind::Rts | PacketKind::Cts), "not a control kind");
        Packet {
            header: PacketHeader {
                kind,
                flow,
                msg_id,
                offset: 0,
                total_len,
                chunk_index: 0,
                payload_len: 0,
            },
            payload: Bytes::new(),
            integrity: false,
        }
    }

    /// Serialized length.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len() + if self.integrity { TRAILER_LEN } else { 0 }
    }

    /// Encodes to a contiguous buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        if self.integrity {
            self.header.encode_integrity(&mut buf);
            buf.extend_from_slice(&self.payload);
            buf.extend_from_slice(&crc32c(&self.payload).to_be_bytes());
        } else {
            self.header.encode(&mut buf);
            buf.extend_from_slice(&self.payload);
        }
        buf.freeze()
    }

    /// Decodes one packet from the front of `buf`, consuming exactly
    /// `wire_len` bytes (zero-copy for the payload). If the header carries
    /// the integrity flag, the header self-check and the payload CRC32C
    /// trailer are both verified; corruption surfaces as
    /// [`ProtoError::HeaderChecksum`] / [`ProtoError::PayloadChecksum`].
    pub fn decode(buf: &mut Bytes) -> Result<Packet, ProtoError> {
        let (header, integrity) = PacketHeader::decode_with_flags(buf)?;
        let plen = header.payload_len as usize;
        let needed = plen + if integrity { TRAILER_LEN } else { 0 };
        if buf.len() < needed {
            return Err(ProtoError::Truncated { needed, got: buf.len() });
        }
        let payload = buf.split_to(plen);
        if integrity {
            let wire_crc = buf.get_u32();
            let computed = crc32c(&payload);
            if computed != wire_crc {
                return Err(ProtoError::PayloadChecksum { expected: computed, got: wire_crc });
            }
        }
        Ok(Packet { header, payload, integrity })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_packet(payload: &[u8]) -> Packet {
        Packet::new(
            PacketHeader {
                kind: PacketKind::Eager,
                flow: 3,
                msg_id: 9,
                offset: 0,
                total_len: payload.len() as u64,
                chunk_index: 0,
                payload_len: 0, // stamped by new()
            },
            Bytes::copy_from_slice(payload),
        )
    }

    #[test]
    fn new_stamps_payload_len() {
        let p = data_packet(b"hello");
        assert_eq!(p.header.payload_len, 5);
        assert_eq!(p.wire_len(), HEADER_LEN + 5);
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = data_packet(b"some payload bytes");
        let mut wire = p.encode();
        let q = Packet::decode(&mut wire).unwrap();
        assert_eq!(q, p);
        assert!(wire.is_empty(), "decode must consume exactly one packet");
    }

    #[test]
    fn integrity_round_trip() {
        let p = data_packet(b"checksummed payload").with_integrity(true);
        assert_eq!(p.wire_len(), HEADER_LEN + 19 + TRAILER_LEN);
        let mut wire = p.encode();
        assert_eq!(wire.len(), p.wire_len());
        let q = Packet::decode(&mut wire).unwrap();
        assert_eq!(q, p);
        assert!(q.integrity);
        assert!(wire.is_empty(), "decode must consume header + payload + trailer");
    }

    #[test]
    fn integrity_detects_payload_corruption() {
        let p = data_packet(b"flip me somewhere").with_integrity(true);
        let wire = p.encode();
        // Corrupt each payload byte (and the trailer itself) in turn.
        for i in HEADER_LEN..wire.len() {
            let mut bytes = wire.to_vec();
            bytes[i] ^= 0x40;
            let mut buf = Bytes::from(bytes);
            assert!(
                matches!(Packet::decode(&mut buf), Err(ProtoError::PayloadChecksum { .. })),
                "payload flip at byte {i} undetected"
            );
        }
    }

    #[test]
    fn legacy_mode_ignores_payload_corruption() {
        // Without the flag there is no trailer: corruption passes silently.
        // This is the pre-integrity behaviour the version bit negotiates away.
        let p = data_packet(b"unprotected");
        let wire = p.encode();
        let mut bytes = wire.to_vec();
        bytes[HEADER_LEN] ^= 0xFF;
        let mut buf = Bytes::from(bytes);
        let q = Packet::decode(&mut buf).unwrap();
        assert_ne!(q.payload, p.payload);
    }

    #[test]
    fn integrity_truncated_trailer_is_truncation() {
        let p = data_packet(b"short trailer").with_integrity(true);
        let full = p.encode();
        let mut cut = full.slice(0..full.len() - 2);
        assert!(matches!(Packet::decode(&mut cut), Err(ProtoError::Truncated { .. })));
    }

    #[test]
    fn back_to_back_packets_decode_in_order() {
        let a = data_packet(b"first");
        let b = data_packet(b"second!").with_integrity(true);
        let mut wire = BytesMut::new();
        wire.extend_from_slice(&a.encode());
        wire.extend_from_slice(&b.encode());
        let mut wire = wire.freeze();
        assert_eq!(Packet::decode(&mut wire).unwrap(), a);
        assert_eq!(Packet::decode(&mut wire).unwrap(), b);
        assert!(wire.is_empty());
    }

    #[test]
    fn short_payload_is_truncation() {
        let p = data_packet(b"truncate me");
        let full = p.encode();
        let mut cut = full.slice(0..full.len() - 3);
        assert!(matches!(Packet::decode(&mut cut), Err(ProtoError::Truncated { .. })));
    }

    #[test]
    fn control_constructor_checks_kind() {
        let rts = Packet::control(PacketKind::Rts, 1, 2, 1024);
        assert_eq!(rts.header.payload_len, 0);
        assert_eq!(rts.wire_len(), HEADER_LEN);
        let mut wire = rts.encode();
        assert_eq!(Packet::decode(&mut wire).unwrap(), rts);
    }

    #[test]
    #[should_panic(expected = "not a control kind")]
    fn control_rejects_data_kinds() {
        let _ = Packet::control(PacketKind::Eager, 1, 2, 3);
    }
}
