//! Header + payload: the unit a driver puts on a wire.

use crate::error::ProtoError;
use crate::header::{PacketHeader, PacketKind, HEADER_LEN};
use bytes::{Bytes, BytesMut};

/// A complete packet.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Wire header (its `payload_len` always matches `payload.len()`).
    pub header: PacketHeader,
    /// Payload bytes (zero-copy slice).
    pub payload: Bytes,
}

impl Packet {
    /// Builds a packet, stamping `payload_len` from the payload.
    pub fn new(mut header: PacketHeader, payload: Bytes) -> Self {
        assert!(payload.len() <= u32::MAX as usize, "payload too large for header");
        header.payload_len = payload.len() as u32;
        Packet { header, payload }
    }

    /// A control packet (RTS/CTS) for a message.
    pub fn control(kind: PacketKind, flow: u32, msg_id: u64, total_len: u64) -> Self {
        assert!(matches!(kind, PacketKind::Rts | PacketKind::Cts), "not a control kind");
        Packet {
            header: PacketHeader {
                kind,
                flow,
                msg_id,
                offset: 0,
                total_len,
                chunk_index: 0,
                payload_len: 0,
            },
            payload: Bytes::new(),
        }
    }

    /// Serialized length.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Encodes to a contiguous buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        self.header.encode(&mut buf);
        buf.extend_from_slice(&self.payload);
        buf.freeze()
    }

    /// Decodes one packet from the front of `buf`, consuming exactly
    /// `wire_len` bytes (zero-copy for the payload).
    pub fn decode(buf: &mut Bytes) -> Result<Packet, ProtoError> {
        let header = PacketHeader::decode(buf)?;
        let plen = header.payload_len as usize;
        if buf.len() < plen {
            return Err(ProtoError::Truncated { needed: plen, got: buf.len() });
        }
        let payload = buf.split_to(plen);
        Ok(Packet { header, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_packet(payload: &[u8]) -> Packet {
        Packet::new(
            PacketHeader {
                kind: PacketKind::Eager,
                flow: 3,
                msg_id: 9,
                offset: 0,
                total_len: payload.len() as u64,
                chunk_index: 0,
                payload_len: 0, // stamped by new()
            },
            Bytes::copy_from_slice(payload),
        )
    }

    #[test]
    fn new_stamps_payload_len() {
        let p = data_packet(b"hello");
        assert_eq!(p.header.payload_len, 5);
        assert_eq!(p.wire_len(), HEADER_LEN + 5);
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = data_packet(b"some payload bytes");
        let mut wire = p.encode();
        let q = Packet::decode(&mut wire).unwrap();
        assert_eq!(q, p);
        assert!(wire.is_empty(), "decode must consume exactly one packet");
    }

    #[test]
    fn back_to_back_packets_decode_in_order() {
        let a = data_packet(b"first");
        let b = data_packet(b"second!");
        let mut wire = BytesMut::new();
        wire.extend_from_slice(&a.encode());
        wire.extend_from_slice(&b.encode());
        let mut wire = wire.freeze();
        assert_eq!(Packet::decode(&mut wire).unwrap(), a);
        assert_eq!(Packet::decode(&mut wire).unwrap(), b);
        assert!(wire.is_empty());
    }

    #[test]
    fn short_payload_is_truncation() {
        let p = data_packet(b"truncate me");
        let full = p.encode();
        let mut cut = full.slice(0..full.len() - 3);
        assert!(matches!(Packet::decode(&mut cut), Err(ProtoError::Truncated { .. })));
    }

    #[test]
    fn control_constructor_checks_kind() {
        let rts = Packet::control(PacketKind::Rts, 1, 2, 1024);
        assert_eq!(rts.header.payload_len, 0);
        assert_eq!(rts.wire_len(), HEADER_LEN);
        let mut wire = rts.encode();
        assert_eq!(Packet::decode(&mut wire).unwrap(), rts);
    }

    #[test]
    #[should_panic(expected = "not a control kind")]
    fn control_rejects_data_kinds() {
        let _ = Packet::control(PacketKind::Eager, 1, 2, 3);
    }
}
