//! # nm-proto — wire protocol substrate
//!
//! NewMadeleine multiplexes logical communication flows over physical rails:
//! messages are chunked across NICs, small messages are aggregated into one
//! packet, large ones negotiate a rendezvous — and the receive side must put
//! everything back together in order. This crate provides those mechanics,
//! independent of any particular driver:
//!
//! * [`header::PacketHeader`] / [`packet::Packet`] — the binary wire format
//!   (fixed 40-byte header + payload), with strict decode validation and an
//!   opt-in integrity mode (header self-check + CRC32C payload trailer,
//!   negotiated by a header flag so the legacy format stays bit-identical).
//! * [`crc`] — the CRC32C (Castagnoli) implementation behind integrity
//!   mode, dependency-free and deterministic.
//! * [`aggregate`] — packing several small messages into one packet (the
//!   winning play of the paper's Fig 3) and unpacking them.
//! * [`chunk`] — splitting a message into per-rail chunks from a ratio
//!   vector, and [`chunk::Reassembler`] to rebuild it from out-of-order,
//!   possibly duplicated chunk arrivals.
//! * [`flow`] — per-(peer, tag) sequencing so multiplexed flows deliver in
//!   send order even when rails race each other.

// The few unsafe blocks in this crate (see the per-block SAFETY
// comments) must spell out every unsafe operation explicitly.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod aggregate;
pub mod chunk;
pub mod crc;
pub mod error;
pub mod flow;
pub mod header;
pub mod packet;

pub use aggregate::{unpack_aggregate, AggPack, Aggregator};
pub use chunk::{split_by_ratios, split_evenly, ChunkDesc, Reassembler};
pub use crc::{crc32c, crc32c_append};
pub use error::ProtoError;
pub use flow::{FlowId, Sequencer};
pub use header::{PacketHeader, PacketKind, FLAG_INTEGRITY, HEADER_LEN};
pub use packet::{Packet, TRAILER_LEN};
