//! Aggregation of small messages into one packet.
//!
//! Paper Fig 3 / §II-C: for eager packets "it is more efficient to aggregate
//! the messages and to send them over the fastest available network instead
//! of using the entire set of network resources". The [`Aggregator`] packs
//! consecutive small messages bound for the same peer into one wire packet;
//! [`unpack_aggregate`] recovers them on the receive side.
//!
//! Pack payload layout: a sequence of `(u32 flow, u64 msg_id, u32 len,
//! len bytes)` entries.

use crate::error::ProtoError;
use crate::header::{PacketHeader, PacketKind};
use crate::packet::Packet;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Per-entry overhead inside an aggregation pack.
pub const ENTRY_OVERHEAD: usize = 4 + 8 + 4;

/// One small message inside a pack.
#[derive(Debug, Clone, PartialEq)]
pub struct AggEntry {
    /// Logical flow (application tag).
    pub flow: u32,
    /// Message id within the flow.
    pub msg_id: u64,
    /// Message bytes.
    pub data: Bytes,
}

/// Accumulates small messages until flushed into one packet.
///
/// ```
/// use bytes::Bytes;
/// use nm_proto::aggregate::{AggEntry, Aggregator};
/// use nm_proto::unpack_aggregate;
///
/// let mut agg = Aggregator::new(4096);
/// agg.push(AggEntry { flow: 1, msg_id: 0, data: Bytes::from_static(b"ping") });
/// agg.push(AggEntry { flow: 1, msg_id: 1, data: Bytes::from_static(b"pong") });
/// let packet = agg.flush(0).unwrap();          // one wire packet...
/// let entries = unpack_aggregate(&packet).unwrap();
/// assert_eq!(entries.len(), 2);                // ...two messages inside
/// assert_eq!(&entries[1].data[..], b"pong");
/// ```
#[derive(Debug)]
pub struct Aggregator {
    max_bytes: usize,
    entries: Vec<AggEntry>,
    payload_bytes: usize,
}

impl Aggregator {
    /// An aggregator flushing at `max_bytes` of packed payload.
    pub fn new(max_bytes: usize) -> Self {
        assert!(max_bytes > ENTRY_OVERHEAD, "pack budget too small");
        Aggregator { max_bytes, entries: Vec::new(), payload_bytes: 0 }
    }

    /// True if `data` would still fit.
    pub fn fits(&self, data_len: usize) -> bool {
        self.payload_bytes + ENTRY_OVERHEAD + data_len <= self.max_bytes
    }

    /// Adds a message; returns `false` (without adding) when it no longer
    /// fits — flush first.
    // nm-analyzer: allow(unbounded-growth) -- byte-capped by the fits() admission check above
    // the push; the pack never exceeds max_bytes
    pub fn push(&mut self, entry: AggEntry) -> bool {
        if !self.fits(entry.data.len()) {
            return false;
        }
        self.payload_bytes += ENTRY_OVERHEAD + entry.data.len();
        self.entries.push(entry);
        true
    }

    /// Number of pending messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current packed payload size.
    pub fn payload_bytes(&self) -> usize {
        self.payload_bytes
    }

    /// Drains the pending messages into a **zero-copy** pack: per-entry
    /// headers are slices of one shared buffer and message payloads travel
    /// as refcounted clones of the original [`Bytes`] — no payload byte is
    /// copied. Returns `None` when empty. `pack_id` becomes the pack's
    /// `msg_id`.
    pub fn flush_segments(&mut self, pack_id: u64) -> Option<AggPack> {
        if self.entries.is_empty() {
            return None;
        }
        let n = self.entries.len();
        let mut headers = BytesMut::with_capacity(n * ENTRY_OVERHEAD);
        for e in &self.entries {
            headers.put_u32(e.flow);
            headers.put_u64(e.msg_id);
            headers.put_u32(e.data.len() as u32);
        }
        let headers = headers.freeze();
        let mut segments = Vec::with_capacity(2 * n);
        for (i, e) in self.entries.drain(..).enumerate() {
            segments.push(headers.slice(i * ENTRY_OVERHEAD..(i + 1) * ENTRY_OVERHEAD));
            if !e.data.is_empty() {
                segments.push(e.data);
            }
        }
        let total = self.payload_bytes as u64;
        self.payload_bytes = 0;
        Some(AggPack {
            header: PacketHeader {
                kind: PacketKind::EagerAggregate,
                flow: 0,
                msg_id: pack_id,
                offset: 0,
                total_len: total,
                chunk_index: 0,
                payload_len: total as u32,
            },
            segments,
        })
    }

    /// Drains the pending messages into one contiguous `EagerAggregate`
    /// packet (a gather of [`Self::flush_segments`] — for transports that
    /// need a flat buffer). Returns `None` when empty.
    pub fn flush(&mut self, pack_id: u64) -> Option<Packet> {
        self.flush_segments(pack_id).map(|pack| pack.into_packet())
    }
}

/// A flushed aggregation pack as an ordered segment list, ready for
/// vectored ("gather") transmission without assembling a contiguous
/// buffer: `[hdr₀, data₀, hdr₁, data₁, …]` where every `hdrᵢ` is a slice
/// of one shared header block and every `dataᵢ` shares storage with the
/// message it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct AggPack {
    /// Wire header of the pack (its `payload_len`/`total_len` cover the
    /// concatenated segments).
    pub header: PacketHeader,
    /// Payload segments in wire order.
    pub segments: Vec<Bytes>,
}

impl AggPack {
    /// Total payload bytes across all segments.
    pub fn payload_len(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }

    /// Gathers the segments into one contiguous [`Packet`] — the single
    /// copy a flat-buffer transport pays; byte-identical to what the
    /// pre-segment `flush` produced.
    pub fn into_packet(self) -> Packet {
        let mut payload = BytesMut::with_capacity(self.payload_len());
        for s in &self.segments {
            payload.extend_from_slice(s);
        }
        Packet::new(self.header, payload.freeze())
    }
}

/// Recovers the packed messages from an `EagerAggregate` packet.
pub fn unpack_aggregate(packet: &Packet) -> Result<Vec<AggEntry>, ProtoError> {
    if packet.header.kind != PacketKind::EagerAggregate {
        return Err(ProtoError::BadHeader(format!(
            "expected EagerAggregate, got {:?}",
            packet.header.kind
        )));
    }
    let mut buf = packet.payload.clone();
    let mut out = Vec::new();
    while buf.has_remaining() {
        if buf.remaining() < ENTRY_OVERHEAD {
            return Err(ProtoError::Truncated { needed: ENTRY_OVERHEAD, got: buf.remaining() });
        }
        let flow = buf.get_u32();
        let msg_id = buf.get_u64();
        let len = buf.get_u32() as usize;
        if buf.remaining() < len {
            return Err(ProtoError::Truncated { needed: len, got: buf.remaining() });
        }
        let data = buf.split_to(len);
        out.push(AggEntry { flow, msg_id, data });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(flow: u32, msg_id: u64, data: &[u8]) -> AggEntry {
        AggEntry { flow, msg_id, data: Bytes::copy_from_slice(data) }
    }

    #[test]
    fn pack_unpack_round_trip() {
        let mut agg = Aggregator::new(4096);
        let entries = vec![entry(1, 10, b"alpha"), entry(2, 20, b""), entry(1, 11, &[7u8; 100])];
        for e in &entries {
            assert!(agg.push(e.clone()));
        }
        assert_eq!(agg.len(), 3);
        let packet = agg.flush(99).expect("non-empty");
        assert!(agg.is_empty());
        assert_eq!(packet.header.msg_id, 99);
        let got = unpack_aggregate(&packet).unwrap();
        assert_eq!(got, entries);
    }

    #[test]
    fn budget_is_enforced() {
        let mut agg = Aggregator::new(ENTRY_OVERHEAD * 2 + 10);
        assert!(agg.push(entry(0, 0, &[1u8; 5])));
        assert!(agg.push(entry(0, 1, &[2u8; 5])));
        assert!(!agg.push(entry(0, 2, &[3u8; 1])), "over budget must be refused");
        assert_eq!(agg.len(), 2);
        // After a flush there is room again.
        let _ = agg.flush(1).unwrap();
        assert!(agg.push(entry(0, 2, &[3u8; 1])));
    }

    #[test]
    fn flush_of_empty_aggregator_is_none() {
        let mut agg = Aggregator::new(1024);
        assert!(agg.flush(0).is_none());
    }

    #[test]
    fn unpack_rejects_wrong_kind_and_corruption() {
        let mut agg = Aggregator::new(1024);
        agg.push(entry(1, 1, b"data"));
        let packet = agg.flush(0).unwrap();

        let mut wrong = packet.clone();
        wrong.header.kind = PacketKind::Eager;
        assert!(matches!(unpack_aggregate(&wrong), Err(ProtoError::BadHeader(_))));

        let mut cut = packet.clone();
        cut.payload = cut.payload.slice(0..cut.payload.len() - 1);
        assert!(matches!(unpack_aggregate(&cut), Err(ProtoError::Truncated { .. })));
    }

    #[test]
    fn segments_share_storage_with_the_original_messages() {
        // The zero-copy claim, verified by pointer identity: the data
        // segments of a flushed pack alias the pushed payload buffers.
        let big = Bytes::from(vec![42u8; 1024]);
        let mut agg = Aggregator::new(4096);
        agg.push(AggEntry { flow: 1, msg_id: 0, data: big.clone() });
        agg.push(AggEntry { flow: 1, msg_id: 1, data: big.slice(100..200) });
        let pack = agg.flush_segments(0).unwrap();
        // Layout: [hdr0, data0, hdr1, data1].
        assert_eq!(pack.segments.len(), 4);
        assert_eq!(pack.segments[1].as_ptr(), big.as_ptr());
        assert_eq!(pack.segments[3].as_ptr(), big.slice(100..200).as_ptr());
        // And both entry headers alias ONE shared header block.
        let h0 = pack.segments[0].as_ptr();
        let h1 = pack.segments[2].as_ptr();
        // SAFETY: `offset_from` requires both pointers inside one
        // allocation — that is the property under test: segments 0 and 2
        // are slices of the single shared header `Bytes` built by
        // `flush_segments`, `ENTRY_OVERHEAD` bytes apart. If a regression
        // put them in separate blocks this would be UB rather than a
        // clean assert, so the layout is re-checked structurally first
        // (`segments.len() == 4` with data segments aliasing the pushed
        // buffers), and the Miri CI lane runs this test to catch exactly
        // that misuse.
        assert_eq!(unsafe { h1.offset_from(h0) }, ENTRY_OVERHEAD as isize);
    }

    #[test]
    fn gathered_pack_is_byte_identical_to_reference_layout() {
        // flush() (a gather of flush_segments) must reproduce the exact
        // wire bytes of the documented layout: (flow, msg_id, len, data)*.
        let entries = vec![entry(1, 10, b"alpha"), entry(2, 20, b""), entry(9, 11, &[7u8; 64])];
        let mut agg = Aggregator::new(4096);
        for e in &entries {
            assert!(agg.push(e.clone()));
        }
        let packet = agg.flush(5).unwrap();

        let mut reference = BytesMut::new();
        for e in &entries {
            reference.put_u32(e.flow);
            reference.put_u64(e.msg_id);
            reference.put_u32(e.data.len() as u32);
            reference.extend_from_slice(&e.data);
        }
        assert_eq!(packet.payload, reference.freeze());
        assert_eq!(packet.header.payload_len as usize, packet.payload.len());
        assert_eq!(packet.header.total_len, packet.payload.len() as u64);
    }

    #[test]
    fn segment_flush_round_trips_through_unpack() {
        let entries = vec![entry(3, 30, b"abc"), entry(4, 40, b"defg")];
        let mut agg = Aggregator::new(4096);
        for e in &entries {
            agg.push(e.clone());
        }
        let pack = agg.flush_segments(8).unwrap();
        assert_eq!(pack.payload_len(), 2 * ENTRY_OVERHEAD + 7);
        let packet = pack.into_packet();
        assert_eq!(packet.header.msg_id, 8);
        assert_eq!(unpack_aggregate(&packet).unwrap(), entries);
    }

    #[test]
    fn wire_round_trip_of_a_pack() {
        let mut agg = Aggregator::new(1024);
        agg.push(entry(5, 50, b"x"));
        agg.push(entry(6, 60, b"yy"));
        let packet = agg.flush(7).unwrap();
        let mut wire = packet.encode();
        let decoded = Packet::decode(&mut wire).unwrap();
        let entries = unpack_aggregate(&decoded).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].data, Bytes::from_static(b"yy"));
    }
}
