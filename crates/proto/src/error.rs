//! Protocol error type.

use std::fmt;

/// Errors raised while encoding, decoding or reassembling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Buffer too short to contain what it claims.
    Truncated {
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A header field had an invalid value.
    BadHeader(String),
    /// A chunk did not fit the message being reassembled.
    BadChunk(String),
    /// A sequencing violation (duplicate or out-of-window sequence number).
    BadSequence(String),
    /// The header self-check did not match (integrity mode): the header was
    /// corrupted in flight.
    HeaderChecksum {
        /// Check recomputed from the received header bytes.
        expected: u16,
        /// Check the wire carried.
        got: u16,
    },
    /// The payload CRC32C trailer did not match (integrity mode): payload
    /// bytes were corrupted in flight.
    PayloadChecksum {
        /// CRC recomputed from the received payload.
        expected: u32,
        /// CRC the wire carried.
        got: u32,
    },
    /// A chunk carried a reassembly/sequencing epoch older than the current
    /// one — a leftover from a superseded failover plan.
    StaleEpoch {
        /// Epoch the chunk carried.
        got: u64,
        /// Epoch currently in force.
        current: u64,
    },
    /// A duplicated chunk range arrived with *different* bytes than the
    /// first copy — silent corruption that a plain duplicate-drop would
    /// have masked.
    DuplicateMismatch {
        /// Offset of the conflicting range.
        offset: u64,
    },
}

impl ProtoError {
    /// True for errors that indicate data corruption (as opposed to
    /// truncation or protocol-state violations) — the class a receiver
    /// counts and routes into failover.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            ProtoError::HeaderChecksum { .. }
                | ProtoError::PayloadChecksum { .. }
                | ProtoError::DuplicateMismatch { .. }
        )
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated { needed, got } => {
                write!(f, "truncated buffer: need {needed} bytes, got {got}")
            }
            ProtoError::BadHeader(msg) => write!(f, "bad header: {msg}"),
            ProtoError::BadChunk(msg) => write!(f, "bad chunk: {msg}"),
            ProtoError::BadSequence(msg) => write!(f, "bad sequence: {msg}"),
            ProtoError::HeaderChecksum { expected, got } => {
                write!(f, "header self-check mismatch: computed {expected:#06x}, wire {got:#06x}")
            }
            ProtoError::PayloadChecksum { expected, got } => {
                write!(f, "payload CRC32C mismatch: computed {expected:#010x}, wire {got:#010x}")
            }
            ProtoError::StaleEpoch { got, current } => {
                write!(f, "stale epoch {got} (current is {current})")
            }
            ProtoError::DuplicateMismatch { offset } => {
                write!(f, "duplicate chunk at offset {offset} carries different bytes")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ProtoError::Truncated { needed: 40, got: 3 }.to_string().contains("40"));
        assert!(ProtoError::BadHeader("kind 9".into()).to_string().contains("kind 9"));
        assert!(ProtoError::BadChunk("overlap".into()).to_string().contains("overlap"));
        assert!(ProtoError::BadSequence("dup 4".into()).to_string().contains("dup 4"));
        assert!(ProtoError::HeaderChecksum { expected: 1, got: 2 }.to_string().contains("0x0001"));
        assert!(ProtoError::PayloadChecksum { expected: 3, got: 4 }.to_string().contains("CRC32C"));
        assert!(ProtoError::StaleEpoch { got: 1, current: 2 }.to_string().contains("stale"));
        assert!(ProtoError::DuplicateMismatch { offset: 8 }.to_string().contains("offset 8"));
    }

    #[test]
    fn corruption_classification() {
        assert!(ProtoError::HeaderChecksum { expected: 0, got: 1 }.is_corruption());
        assert!(ProtoError::PayloadChecksum { expected: 0, got: 1 }.is_corruption());
        assert!(ProtoError::DuplicateMismatch { offset: 0 }.is_corruption());
        assert!(!ProtoError::Truncated { needed: 1, got: 0 }.is_corruption());
        assert!(!ProtoError::StaleEpoch { got: 0, current: 1 }.is_corruption());
    }
}
