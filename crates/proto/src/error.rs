//! Protocol error type.

use std::fmt;

/// Errors raised while encoding, decoding or reassembling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Buffer too short to contain what it claims.
    Truncated {
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A header field had an invalid value.
    BadHeader(String),
    /// A chunk did not fit the message being reassembled.
    BadChunk(String),
    /// A sequencing violation (duplicate or out-of-window sequence number).
    BadSequence(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated { needed, got } => {
                write!(f, "truncated buffer: need {needed} bytes, got {got}")
            }
            ProtoError::BadHeader(msg) => write!(f, "bad header: {msg}"),
            ProtoError::BadChunk(msg) => write!(f, "bad chunk: {msg}"),
            ProtoError::BadSequence(msg) => write!(f, "bad sequence: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ProtoError::Truncated { needed: 40, got: 3 }.to_string().contains("40"));
        assert!(ProtoError::BadHeader("kind 9".into()).to_string().contains("kind 9"));
        assert!(ProtoError::BadChunk("overlap".into()).to_string().contains("overlap"));
        assert!(ProtoError::BadSequence("dup 4".into()).to_string().contains("dup 4"));
    }
}
