//! The fixed binary packet header.
//!
//! Layout (big-endian, 40 bytes):
//!
//! | off | len | field       |
//! |-----|-----|-------------|
//! | 0   | 1   | kind        |
//! | 1   | 3   | reserved    |
//! | 4   | 4   | flow (tag)  |
//! | 8   | 8   | msg_id      |
//! | 16  | 8   | offset      |
//! | 24  | 8   | total_len   |
//! | 32  | 4   | chunk_index |
//! | 36  | 4   | payload_len |

use crate::error::ProtoError;
use bytes::{Buf, BufMut};

/// Header size on the wire.
pub const HEADER_LEN: usize = 40;

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A self-contained eager message (or chunk of one).
    Eager,
    /// An aggregation pack of several small messages (Fig 3's winner).
    EagerAggregate,
    /// Rendezvous request (ready-to-send).
    Rts,
    /// Rendezvous grant (clear-to-send).
    Cts,
    /// Rendezvous data chunk.
    RdvData,
}

impl PacketKind {
    fn to_u8(self) -> u8 {
        match self {
            PacketKind::Eager => 1,
            PacketKind::EagerAggregate => 2,
            PacketKind::Rts => 3,
            PacketKind::Cts => 4,
            PacketKind::RdvData => 5,
        }
    }

    fn from_u8(v: u8) -> Result<Self, ProtoError> {
        Ok(match v {
            1 => PacketKind::Eager,
            2 => PacketKind::EagerAggregate,
            3 => PacketKind::Rts,
            4 => PacketKind::Cts,
            5 => PacketKind::RdvData,
            other => return Err(ProtoError::BadHeader(format!("unknown kind {other}"))),
        })
    }
}

/// Decoded packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHeader {
    /// Packet kind.
    pub kind: PacketKind,
    /// Logical flow (application tag).
    pub flow: u32,
    /// Message identifier, unique per flow on the sender.
    pub msg_id: u64,
    /// Byte offset of this chunk within the whole message.
    pub offset: u64,
    /// Total message length in bytes.
    pub total_len: u64,
    /// Index of this chunk among the message's chunks.
    pub chunk_index: u32,
    /// Payload bytes following the header.
    pub payload_len: u32,
}

impl PacketHeader {
    /// Encodes into `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.kind.to_u8());
        buf.put_bytes(0, 3);
        buf.put_u32(self.flow);
        buf.put_u64(self.msg_id);
        buf.put_u64(self.offset);
        buf.put_u64(self.total_len);
        buf.put_u32(self.chunk_index);
        buf.put_u32(self.payload_len);
    }

    /// Decodes from `buf`, validating structural invariants
    /// (`offset + payload_len <= total_len` for payload-bearing kinds).
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, ProtoError> {
        if buf.remaining() < HEADER_LEN {
            return Err(ProtoError::Truncated { needed: HEADER_LEN, got: buf.remaining() });
        }
        let kind = PacketKind::from_u8(buf.get_u8())?;
        buf.advance(3);
        let flow = buf.get_u32();
        let msg_id = buf.get_u64();
        let offset = buf.get_u64();
        let total_len = buf.get_u64();
        let chunk_index = buf.get_u32();
        let payload_len = buf.get_u32();
        let h = PacketHeader { kind, flow, msg_id, offset, total_len, chunk_index, payload_len };
        h.validate()?;
        Ok(h)
    }

    fn validate(&self) -> Result<(), ProtoError> {
        match self.kind {
            PacketKind::Eager | PacketKind::EagerAggregate | PacketKind::RdvData => {
                let end = self
                    .offset
                    .checked_add(self.payload_len as u64)
                    .ok_or_else(|| ProtoError::BadHeader("offset overflow".into()))?;
                if end > self.total_len {
                    return Err(ProtoError::BadHeader(format!(
                        "chunk [{}, {end}) exceeds total_len {}",
                        self.offset, self.total_len
                    )));
                }
            }
            PacketKind::Rts => {
                if self.payload_len != 0 {
                    return Err(ProtoError::BadHeader("RTS carries no payload".into()));
                }
            }
            PacketKind::Cts => {
                if self.payload_len != 0 {
                    return Err(ProtoError::BadHeader("CTS carries no payload".into()));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use proptest::prelude::*;

    fn sample() -> PacketHeader {
        PacketHeader {
            kind: PacketKind::Eager,
            flow: 7,
            msg_id: 12345,
            offset: 4096,
            total_len: 65536,
            chunk_index: 1,
            payload_len: 8192,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let h = sample();
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let got = PacketHeader::decode(&mut buf.freeze()).unwrap();
        assert_eq!(got, h);
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let h = sample();
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let mut short = buf.freeze().slice(0..HEADER_LEN - 1);
        match PacketHeader::decode(&mut short) {
            Err(ProtoError::Truncated { needed, got }) => {
                assert_eq!(needed, HEADER_LEN);
                assert_eq!(got, HEADER_LEN - 1);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut buf = BytesMut::new();
        sample().encode(&mut buf);
        let mut bytes = buf.to_vec();
        bytes[0] = 200;
        assert!(matches!(PacketHeader::decode(&mut &bytes[..]), Err(ProtoError::BadHeader(_))));
    }

    #[test]
    fn chunk_overrunning_message_is_rejected() {
        let mut h = sample();
        h.offset = 60_000;
        h.payload_len = 8192; // 60000+8192 > 65536
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert!(matches!(PacketHeader::decode(&mut buf.freeze()), Err(ProtoError::BadHeader(_))));
    }

    #[test]
    fn control_packets_must_be_empty() {
        let mut h = sample();
        h.kind = PacketKind::Rts;
        h.payload_len = 4;
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert!(PacketHeader::decode(&mut buf.freeze()).is_err());
        h.payload_len = 0;
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert!(PacketHeader::decode(&mut buf.freeze()).is_ok());
    }

    proptest! {
        #[test]
        fn round_trip_any_valid_header(
            kind_sel in 0u8..5,
            flow in any::<u32>(),
            msg_id in any::<u64>(),
            total_len in 0u64..(1 << 40),
            chunk_index in any::<u32>(),
            frac in 0.0f64..1.0,
            len_frac in 0.0f64..1.0,
        ) {
            let kind = [
                PacketKind::Eager,
                PacketKind::EagerAggregate,
                PacketKind::Rts,
                PacketKind::Cts,
                PacketKind::RdvData,
            ][kind_sel as usize];
            let (offset, payload_len) = match kind {
                PacketKind::Rts | PacketKind::Cts => (0, 0),
                _ => {
                    let offset = (total_len as f64 * frac) as u64;
                    let maxlen = (total_len - offset).min(u32::MAX as u64);
                    (offset, (maxlen as f64 * len_frac) as u32)
                }
            };
            let h = PacketHeader { kind, flow, msg_id, offset, total_len, chunk_index, payload_len };
            let mut buf = BytesMut::new();
            h.encode(&mut buf);
            let got = PacketHeader::decode(&mut buf.freeze()).unwrap();
            prop_assert_eq!(got, h);
        }
    }
}
