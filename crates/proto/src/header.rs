//! The fixed binary packet header.
//!
//! Layout (big-endian, 40 bytes):
//!
//! | off | len | field        |
//! |-----|-----|--------------|
//! | 0   | 1   | kind         |
//! | 1   | 1   | flags        |
//! | 2   | 2   | header_check |
//! | 4   | 4   | flow (tag)   |
//! | 8   | 8   | msg_id       |
//! | 16  | 8   | offset       |
//! | 24  | 8   | total_len    |
//! | 32  | 4   | chunk_index  |
//! | 36  | 4   | payload_len  |
//!
//! `flags` and `header_check` live in what used to be three reserved zero
//! bytes. The only flag so far is [`FLAG_INTEGRITY`]: when set, the header
//! carries a truncated-CRC32C self-check in `header_check` (computed over
//! the 40 header bytes with the check field zeroed) and the packet's
//! payload is followed by a 4-byte CRC32C trailer (see
//! [`crate::packet::Packet`]). When clear, both fields are zero and the
//! encoding is bit-identical to the pre-integrity wire format — the flag
//! *is* the version negotiation: a sender that never sets it produces the
//! legacy format, and a receiver verifies exactly when the wire says so.

use crate::crc::crc32c;
use crate::error::ProtoError;
use bytes::{Buf, BufMut};

/// Header size on the wire.
pub const HEADER_LEN: usize = 40;

/// Flag bit: header self-check + payload CRC32C trailer are present.
pub const FLAG_INTEGRITY: u8 = 0x01;

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A self-contained eager message (or chunk of one).
    Eager,
    /// An aggregation pack of several small messages (Fig 3's winner).
    EagerAggregate,
    /// Rendezvous request (ready-to-send).
    Rts,
    /// Rendezvous grant (clear-to-send).
    Cts,
    /// Rendezvous data chunk.
    RdvData,
}

impl PacketKind {
    fn to_u8(self) -> u8 {
        match self {
            PacketKind::Eager => 1,
            PacketKind::EagerAggregate => 2,
            PacketKind::Rts => 3,
            PacketKind::Cts => 4,
            PacketKind::RdvData => 5,
        }
    }

    fn from_u8(v: u8) -> Result<Self, ProtoError> {
        Ok(match v {
            1 => PacketKind::Eager,
            2 => PacketKind::EagerAggregate,
            3 => PacketKind::Rts,
            4 => PacketKind::Cts,
            5 => PacketKind::RdvData,
            other => return Err(ProtoError::BadHeader(format!("unknown kind {other}"))),
        })
    }
}

/// Decoded packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHeader {
    /// Packet kind.
    pub kind: PacketKind,
    /// Logical flow (application tag).
    pub flow: u32,
    /// Message identifier, unique per flow on the sender.
    pub msg_id: u64,
    /// Byte offset of this chunk within the whole message.
    pub offset: u64,
    /// Total message length in bytes.
    pub total_len: u64,
    /// Index of this chunk among the message's chunks.
    pub chunk_index: u32,
    /// Payload bytes following the header.
    pub payload_len: u32,
}

impl PacketHeader {
    /// Serialises to a fixed array with the given `flags` and `header_check`
    /// bytes. The single source of truth for the wire layout — both encode
    /// paths and the self-check computation go through it.
    // nm-analyzer: allow(index) -- literal offsets into a fixed
    // [u8; HEADER_LEN]; out-of-bounds would fail the round-trip tests
    fn to_bytes(self, flags: u8, check: u16) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0] = self.kind.to_u8();
        out[1] = flags;
        out[2..4].copy_from_slice(&check.to_be_bytes());
        out[4..8].copy_from_slice(&self.flow.to_be_bytes());
        out[8..16].copy_from_slice(&self.msg_id.to_be_bytes());
        out[16..24].copy_from_slice(&self.offset.to_be_bytes());
        out[24..32].copy_from_slice(&self.total_len.to_be_bytes());
        out[32..36].copy_from_slice(&self.chunk_index.to_be_bytes());
        out[36..40].copy_from_slice(&self.payload_len.to_be_bytes());
        out
    }

    /// Truncated CRC32C over the header bytes with the check field zeroed.
    fn self_check(&self, flags: u8) -> u16 {
        (crc32c(&self.to_bytes(flags, 0)) & 0xFFFF) as u16
    }

    /// Encodes into `buf` (legacy format: flags and check both zero —
    /// bit-identical to the pre-integrity wire format).
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(&self.to_bytes(0, 0));
    }

    /// Encodes into `buf` with [`FLAG_INTEGRITY`] set and the header
    /// self-check stamped.
    pub fn encode_integrity<B: BufMut>(&self, buf: &mut B) {
        let check = self.self_check(FLAG_INTEGRITY);
        buf.put_slice(&self.to_bytes(FLAG_INTEGRITY, check));
    }

    /// Decodes from `buf`, validating structural invariants
    /// (`offset + payload_len <= total_len` for payload-bearing kinds).
    /// Accepts both legacy and integrity-flagged headers; use
    /// [`decode_with_flags`](Self::decode_with_flags) when the caller needs
    /// to know whether a payload trailer follows.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, ProtoError> {
        Self::decode_with_flags(buf).map(|(h, _)| h)
    }

    /// Decodes from `buf`, returning the header and whether
    /// [`FLAG_INTEGRITY`] was set (i.e. whether a 4-byte payload CRC
    /// trailer follows the payload). Rejects unknown flag bits and, in
    /// integrity mode, verifies the header self-check before trusting any
    /// field.
    pub fn decode_with_flags<B: Buf>(buf: &mut B) -> Result<(Self, bool), ProtoError> {
        if buf.remaining() < HEADER_LEN {
            return Err(ProtoError::Truncated { needed: HEADER_LEN, got: buf.remaining() });
        }
        let mut raw = [0u8; HEADER_LEN];
        buf.copy_to_slice(&mut raw);
        // Irrefutable destructuring of the fixed-size array: every field
        // boundary is checked at compile time, so extraction is total — no
        // indexing, no fallible `try_into`.
        let [kind_b, flags, c0, c1, tail @ ..] = raw;
        let [w0, w1, w2, w3, tail @ ..] = tail;
        let [m0, m1, m2, m3, m4, m5, m6, m7, tail @ ..] = tail;
        let [o0, o1, o2, o3, o4, o5, o6, o7, tail @ ..] = tail;
        let [t0, t1, t2, t3, t4, t5, t6, t7, tail @ ..] = tail;
        let [x0, x1, x2, x3, p0, p1, p2, p3] = tail;
        if flags & !FLAG_INTEGRITY != 0 {
            return Err(ProtoError::BadHeader(format!("unknown flag bits {flags:#04x}")));
        }
        let integrity = flags & FLAG_INTEGRITY != 0;
        let wire_check = u16::from_be_bytes([c0, c1]);
        if !integrity && wire_check != 0 {
            return Err(ProtoError::BadHeader(format!(
                "nonzero check field {wire_check:#06x} without integrity flag"
            )));
        }
        if integrity {
            let mut zeroed = raw;
            let [_, _, z0, z1, ..] = &mut zeroed;
            (*z0, *z1) = (0, 0);
            let computed = (crc32c(&zeroed) & 0xFFFF) as u16;
            if computed != wire_check {
                return Err(ProtoError::HeaderChecksum { expected: computed, got: wire_check });
            }
        }
        let kind = PacketKind::from_u8(kind_b)?;
        let h = PacketHeader {
            kind,
            flow: u32::from_be_bytes([w0, w1, w2, w3]),
            msg_id: u64::from_be_bytes([m0, m1, m2, m3, m4, m5, m6, m7]),
            offset: u64::from_be_bytes([o0, o1, o2, o3, o4, o5, o6, o7]),
            total_len: u64::from_be_bytes([t0, t1, t2, t3, t4, t5, t6, t7]),
            chunk_index: u32::from_be_bytes([x0, x1, x2, x3]),
            payload_len: u32::from_be_bytes([p0, p1, p2, p3]),
        };
        h.validate()?;
        Ok((h, integrity))
    }

    fn validate(&self) -> Result<(), ProtoError> {
        match self.kind {
            PacketKind::Eager | PacketKind::EagerAggregate | PacketKind::RdvData => {
                let end = self
                    .offset
                    .checked_add(self.payload_len as u64)
                    .ok_or_else(|| ProtoError::BadHeader("offset overflow".into()))?;
                if end > self.total_len {
                    return Err(ProtoError::BadHeader(format!(
                        "chunk [{}, {end}) exceeds total_len {}",
                        self.offset, self.total_len
                    )));
                }
            }
            PacketKind::Rts => {
                if self.payload_len != 0 {
                    return Err(ProtoError::BadHeader("RTS carries no payload".into()));
                }
            }
            PacketKind::Cts => {
                if self.payload_len != 0 {
                    return Err(ProtoError::BadHeader("CTS carries no payload".into()));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use proptest::prelude::*;

    fn sample() -> PacketHeader {
        PacketHeader {
            kind: PacketKind::Eager,
            flow: 7,
            msg_id: 12345,
            offset: 4096,
            total_len: 65536,
            chunk_index: 1,
            payload_len: 8192,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let h = sample();
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let got = PacketHeader::decode(&mut buf.freeze()).unwrap();
        assert_eq!(got, h);
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let h = sample();
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let mut short = buf.freeze().slice(0..HEADER_LEN - 1);
        match PacketHeader::decode(&mut short) {
            Err(ProtoError::Truncated { needed, got }) => {
                assert_eq!(needed, HEADER_LEN);
                assert_eq!(got, HEADER_LEN - 1);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut buf = BytesMut::new();
        sample().encode(&mut buf);
        let mut bytes = buf.to_vec();
        bytes[0] = 200;
        assert!(matches!(PacketHeader::decode(&mut &bytes[..]), Err(ProtoError::BadHeader(_))));
    }

    #[test]
    fn chunk_overrunning_message_is_rejected() {
        let mut h = sample();
        h.offset = 60_000;
        h.payload_len = 8192; // 60000+8192 > 65536
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert!(matches!(PacketHeader::decode(&mut buf.freeze()), Err(ProtoError::BadHeader(_))));
    }

    #[test]
    fn control_packets_must_be_empty() {
        let mut h = sample();
        h.kind = PacketKind::Rts;
        h.payload_len = 4;
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert!(PacketHeader::decode(&mut buf.freeze()).is_err());
        h.payload_len = 0;
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert!(PacketHeader::decode(&mut buf.freeze()).is_ok());
    }

    #[test]
    fn integrity_round_trip_and_flag_surfaces() {
        let h = sample();
        let mut buf = BytesMut::new();
        h.encode_integrity(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let (got, integrity) = PacketHeader::decode_with_flags(&mut buf.freeze()).unwrap();
        assert_eq!(got, h);
        assert!(integrity);

        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let (got, integrity) = PacketHeader::decode_with_flags(&mut buf.freeze()).unwrap();
        assert_eq!(got, h);
        assert!(!integrity);
    }

    #[test]
    fn legacy_encoding_is_bit_identical_to_pre_integrity_format() {
        // Byte-for-byte pin of the flags=0 layout: kind, three zero bytes,
        // then the big-endian fields. Any change here breaks the goldens.
        let h = sample();
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let mut want = vec![1u8, 0, 0, 0];
        want.extend_from_slice(&7u32.to_be_bytes());
        want.extend_from_slice(&12345u64.to_be_bytes());
        want.extend_from_slice(&4096u64.to_be_bytes());
        want.extend_from_slice(&65536u64.to_be_bytes());
        want.extend_from_slice(&1u32.to_be_bytes());
        want.extend_from_slice(&8192u32.to_be_bytes());
        assert_eq!(&buf[..], &want[..]);
    }

    #[test]
    fn header_corruption_is_detected_in_integrity_mode() {
        let h = sample();
        let mut buf = BytesMut::new();
        h.encode_integrity(&mut buf);
        // Flip one bit in every checked byte position (skip the check field
        // itself at 2..4 — flipping it is also caught, tested below).
        for i in (0..HEADER_LEN).filter(|i| !(2..4).contains(i)) {
            let mut bytes = buf.to_vec();
            bytes[i] ^= 0x10;
            let got = PacketHeader::decode_with_flags(&mut &bytes[..]);
            if i == 1 {
                // Flag byte flips become unknown-flag rejections.
                assert!(matches!(got, Err(ProtoError::BadHeader(_))), "byte {i}: {got:?}");
            } else {
                assert!(matches!(got, Err(ProtoError::HeaderChecksum { .. })), "byte {i}: {got:?}");
            }
        }
        // A corrupted check field itself is detected too.
        let mut bytes = buf.to_vec();
        bytes[2] ^= 0x10;
        assert!(matches!(
            PacketHeader::decode_with_flags(&mut &bytes[..]),
            Err(ProtoError::HeaderChecksum { .. })
        ));
    }

    #[test]
    fn unknown_flag_bits_are_rejected() {
        let mut buf = BytesMut::new();
        sample().encode(&mut buf);
        let mut bytes = buf.to_vec();
        bytes[1] = 0x02;
        assert!(matches!(
            PacketHeader::decode_with_flags(&mut &bytes[..]),
            Err(ProtoError::BadHeader(_))
        ));
    }

    /// Satellite: seeded exhaustive-ish corner sweep — decode must never
    /// panic on adversarial 40-byte input, only return typed errors. Mixes
    /// corner values (0, 1, MAX, sign bits) at every field position with a
    /// deterministic xorshift filler — no dependencies beyond the stdlib.
    #[test]
    fn decode_never_panics_corner_sweep() {
        let corners: [u8; 6] = [0x00, 0x01, 0x7F, 0x80, 0xFE, 0xFF];
        let mut x = 0x9E37_79B9_7F4A_7C15u64; // seed
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut decoded_ok = 0u32;
        for round in 0..2000 {
            let mut raw = [0u8; HEADER_LEN];
            if round % 3 == 0 {
                // Biased round: start from a *valid* header (legacy or
                // integrity framing) so the sweep reaches the deeper
                // validation paths, then corrupt one byte on half of them.
                let kind = [
                    PacketKind::Eager,
                    PacketKind::EagerAggregate,
                    PacketKind::Rts,
                    PacketKind::Cts,
                    PacketKind::RdvData,
                ][(round / 3) % 5];
                let total_len = next() % (1 << 20);
                let (offset, payload_len) = match kind {
                    PacketKind::Rts | PacketKind::Cts => (0, 0),
                    _ => {
                        let offset = next() % (total_len + 1);
                        (offset, (next() % (total_len - offset + 1)) as u32)
                    }
                };
                let h = PacketHeader {
                    kind,
                    flow: (next() & 0xFFFF_FFFF) as u32,
                    msg_id: next(),
                    offset,
                    total_len,
                    chunk_index: (next() & 0xFFFF_FFFF) as u32,
                    payload_len,
                };
                let mut buf = BytesMut::new();
                if round % 2 == 0 {
                    h.encode_integrity(&mut buf);
                } else {
                    h.encode(&mut buf);
                }
                raw.copy_from_slice(&buf);
                if round % 6 == 3 {
                    raw[(next() % HEADER_LEN as u64) as usize] ^= 1 << (next() % 8);
                }
            } else {
                // Adversarial round: random bytes with a corner value pinned
                // at a rotating position.
                for b in raw.iter_mut() {
                    *b = (next() & 0xFF) as u8;
                }
                let pos = round % HEADER_LEN;
                raw[pos] = corners[(round / HEADER_LEN) % corners.len()];
            }
            // An Err is fine (typed error: the point is no panic); anything
            // that decodes must re-encode to the same bytes (modulo the
            // check field legacy encode zeroes).
            if let Ok((h, integrity)) = PacketHeader::decode_with_flags(&mut &raw[..]) {
                decoded_ok += 1;
                let mut buf = BytesMut::new();
                if integrity {
                    h.encode_integrity(&mut buf);
                } else {
                    h.encode(&mut buf);
                }
                assert_eq!(&buf[..], &raw[..], "round {round} re-encode mismatch");
            }
            // Truncated prefixes must error, never panic.
            let cut = (next() % HEADER_LEN as u64) as usize;
            assert!(PacketHeader::decode_with_flags(&mut &raw[..cut]).is_err());
        }
        // Sanity: the biased rounds should have produced at least some
        // successful decodes, or the sweep isn't reaching validate().
        assert!(decoded_ok > 0, "sweep never decoded a single header");
    }

    proptest! {
        #[test]
        fn decode_never_panics_on_arbitrary_bytes(raw in proptest::collection::vec(any::<u8>(), 0..64)) {
            // Must return Ok or a typed error — never panic.
            let _ = PacketHeader::decode_with_flags(&mut &raw[..]);
        }

        #[test]
        fn integrity_round_trip_any_valid_header(
            kind_sel in 0u8..5,
            flow in any::<u32>(),
            msg_id in any::<u64>(),
            total_len in 0u64..(1 << 40),
            chunk_index in any::<u32>(),
            frac in 0.0f64..1.0,
            len_frac in 0.0f64..1.0,
        ) {
            let kind = [
                PacketKind::Eager,
                PacketKind::EagerAggregate,
                PacketKind::Rts,
                PacketKind::Cts,
                PacketKind::RdvData,
            ][kind_sel as usize];
            let (offset, payload_len) = match kind {
                PacketKind::Rts | PacketKind::Cts => (0, 0),
                _ => {
                    let offset = (total_len as f64 * frac) as u64;
                    let maxlen = (total_len - offset).min(u32::MAX as u64);
                    (offset, (maxlen as f64 * len_frac) as u32)
                }
            };
            let h = PacketHeader { kind, flow, msg_id, offset, total_len, chunk_index, payload_len };
            let mut buf = BytesMut::new();
            h.encode_integrity(&mut buf);
            let (got, integrity) = PacketHeader::decode_with_flags(&mut buf.freeze()).unwrap();
            prop_assert_eq!(got, h);
            prop_assert!(integrity);
        }

        #[test]
        fn round_trip_any_valid_header(
            kind_sel in 0u8..5,
            flow in any::<u32>(),
            msg_id in any::<u64>(),
            total_len in 0u64..(1 << 40),
            chunk_index in any::<u32>(),
            frac in 0.0f64..1.0,
            len_frac in 0.0f64..1.0,
        ) {
            let kind = [
                PacketKind::Eager,
                PacketKind::EagerAggregate,
                PacketKind::Rts,
                PacketKind::Cts,
                PacketKind::RdvData,
            ][kind_sel as usize];
            let (offset, payload_len) = match kind {
                PacketKind::Rts | PacketKind::Cts => (0, 0),
                _ => {
                    let offset = (total_len as f64 * frac) as u64;
                    let maxlen = (total_len - offset).min(u32::MAX as u64);
                    (offset, (maxlen as f64 * len_frac) as u32)
                }
            };
            let h = PacketHeader { kind, flow, msg_id, offset, total_len, chunk_index, payload_len };
            let mut buf = BytesMut::new();
            h.encode(&mut buf);
            let got = PacketHeader::decode(&mut buf.freeze()).unwrap();
            prop_assert_eq!(got, h);
        }
    }
}
