//! Property tests for [`nm_proto::chunk::Reassembler`]: random chunkings
//! fed in random permutations, with injected exact duplicates, corrupted
//! duplicates, overlapping chunks, and stale-epoch chunks. The invariants:
//!
//! * any permutation of a valid chunking reassembles the exact message;
//! * exact duplicates are dropped (counted, state unchanged);
//! * corrupted duplicates and overlaps are rejected without perturbing
//!   the bytes already accepted;
//! * chunks stamped with an old epoch are rejected after `bump_epoch`.

use bytes::Bytes;
use nm_proto::chunk::Reassembler;
use nm_proto::error::ProtoError;
use proptest::prelude::*;

/// Position-dependent payload so any misplacement shows up as a byte
/// mismatch, not just a length mismatch.
fn payload(total: u64) -> Vec<u8> {
    (0..total).map(|i| (i as u8) ^ (i >> 8) as u8 ^ 0x5A).collect()
}

/// Splits `[0, total)` at the (deduplicated, in-range) cut points.
fn chunks_from_cuts(total: u64, cuts: &[u64]) -> Vec<(u64, u64)> {
    let mut points: Vec<u64> = cuts.iter().map(|&c| 1 + c % total).filter(|&p| p < total).collect();
    points.sort_unstable();
    points.dedup();
    let mut chunks = Vec::with_capacity(points.len() + 1);
    let mut start = 0;
    for p in points {
        chunks.push((start, p - start));
        start = p;
    }
    chunks.push((start, total - start));
    chunks
}

/// Deterministic Fisher–Yates driven by a caller-provided seed (the shim
/// proptest has no `prop_shuffle`).
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Any permutation of any chunking reassembles byte-identically, with
    /// exact duplicates dropped along the way.
    #[test]
    fn permutations_with_duplicates_reassemble(
        total in 1u64..1500,
        cuts in proptest::collection::vec(any::<u64>(), 0..8),
        seed in any::<u64>(),
        dup_mask in any::<u16>(),
    ) {
        let msg = payload(total);
        let mut order = chunks_from_cuts(total, &cuts);
        shuffle(&mut order, seed);

        let mut r = Reassembler::new(total);
        let mut expected_dups = 0u64;
        for (i, &(off, len)) in order.iter().enumerate() {
            let data = Bytes::copy_from_slice(&msg[off as usize..(off + len) as usize]);
            prop_assert!(r.feed(off, &data).is_ok(), "valid chunk rejected");
            // Inject an exact duplicate for chunks selected by the mask:
            // it must be accepted-and-dropped, changing nothing but the
            // duplicate counter.
            if len > 0 && dup_mask & (1 << (i % 16)) != 0 {
                let before = r.received();
                prop_assert!(r.feed(off, &data).is_ok(), "exact duplicate rejected");
                expected_dups += 1;
                prop_assert_eq!(r.received(), before, "duplicate changed received bytes");
            }
        }
        prop_assert!(r.is_complete());
        prop_assert_eq!(r.duplicates_dropped(), expected_dups);
        prop_assert_eq!(&r.into_message()[..], &msg[..]);
    }

    /// Corrupted duplicates and overlapping chunks are rejected and leave
    /// the already-accepted state untouched (same bytes, same counters).
    #[test]
    fn corruption_and_overlap_never_perturb_state(
        total in 4u64..1024,
        cuts in proptest::collection::vec(any::<u64>(), 1..6),
        seed in any::<u64>(),
    ) {
        let msg = payload(total);
        let mut order = chunks_from_cuts(total, &cuts);
        shuffle(&mut order, seed);

        let mut r = Reassembler::new(total);
        for &(off, len) in &order {
            let data = Bytes::copy_from_slice(&msg[off as usize..(off + len) as usize]);
            r.feed(off, &data).unwrap();

            if len == 0 {
                continue;
            }
            let received_before = r.received();
            let dups_before = r.duplicates_dropped();

            // A byte-flipped duplicate of the chunk just fed: must be
            // DuplicateMismatch, not silently kept or dropped.
            let mut bad = msg[off as usize..(off + len) as usize].to_vec();
            bad[0] ^= 0xFF;
            match r.feed(off, &Bytes::from(bad)) {
                Err(ProtoError::DuplicateMismatch { offset }) => {
                    prop_assert_eq!(offset, off);
                }
                other => prop_assert!(false, "corrupt duplicate: got {:?}", other),
            }

            // A one-byte chunk poking inside the fed range (same start ⇒
            // duplicate path, shifted start ⇒ overlap path): must be an
            // error whenever it is not an exact duplicate.
            if len >= 2 {
                let poke = Bytes::copy_from_slice(&msg[(off + 1) as usize..(off + 2) as usize]);
                prop_assert!(
                    r.feed(off + 1, &poke).is_err(),
                    "overlapping chunk accepted"
                );
            }

            prop_assert_eq!(r.received(), received_before, "rejected feed changed state");
            prop_assert_eq!(r.duplicates_dropped(), dups_before);
        }
        prop_assert!(r.is_complete());
        prop_assert_eq!(&r.into_message()[..], &msg[..]);
    }

    /// After a failover epoch bump, stale-stamped chunks are rejected and
    /// current-epoch retransmissions still complete the message.
    #[test]
    fn stale_epoch_chunks_rejected_after_bump(
        total in 2u64..512,
        cuts in proptest::collection::vec(any::<u64>(), 1..4),
        bumps in 1u64..4,
    ) {
        let msg = payload(total);
        let chunks = chunks_from_cuts(total, &cuts);

        let mut r = Reassembler::new(total);
        // First chunk arrives under epoch 0.
        let (o0, l0) = chunks[0];
        let first = Bytes::copy_from_slice(&msg[o0 as usize..(o0 + l0) as usize]);
        r.feed_epoch(0, o0, &first).unwrap();

        for _ in 0..bumps {
            r.bump_epoch();
        }
        prop_assert_eq!(r.epoch(), bumps);

        // Epoch-0 stragglers are now stale; future stamps are protocol
        // violations; both leave state untouched.
        let received_before = r.received();
        match r.feed_epoch(0, o0, &first) {
            Err(ProtoError::StaleEpoch { got, current }) => {
                prop_assert_eq!(got, 0);
                prop_assert_eq!(current, bumps);
            }
            other => prop_assert!(false, "stale chunk: got {:?}", other),
        }
        prop_assert!(r.feed_epoch(bumps + 1, o0, &first).is_err(), "future epoch accepted");
        prop_assert_eq!(r.received(), received_before);

        // Retransmitting everything under the current epoch completes
        // (the already-fed first chunk dedupes).
        for &(off, len) in &chunks {
            let data = Bytes::copy_from_slice(&msg[off as usize..(off + len) as usize]);
            prop_assert!(r.feed_epoch(bumps, off, &data).is_ok());
        }
        prop_assert!(r.is_complete());
        prop_assert_eq!(r.duplicates_dropped(), u64::from(l0 > 0));
        prop_assert_eq!(&r.into_message()[..], &msg[..]);
    }
}
