//! Loom model checks for the operation log's publish/replay protocols.
//!
//! Compiled and run only under the loom CI lane:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p nm-replog --features loom --test loom
//! ```
//!
//! Three invariants are modeled (ISSUE 6 tentpole):
//!
//! 1. **No lost op** — concurrent writers appending through the combining
//!    lock never drop or double-apply an op: the master state equals the
//!    sum of everything appended, in every schedule.
//! 2. **Replica convergence** — replicas replaying the ring concurrently
//!    with writers end up, after the writers finish and one final `read`,
//!    bit-identical to the master state.
//! 3. **No torn reads during combine** — ops carry an internal invariant
//!    (`w1 == 3 * w0`); `apply_op` asserts it, so a replica that validated
//!    a half-overwritten slot panics the model. A 2-slot ring forces the
//!    writer to lap in-flight readers, exercising the invalidate → write →
//!    publish window and the lap-resync fallback.
//!
//! Models stay tiny (2 threads, ≤ 4 ops): loom explores *schedules*, and
//! every extra synchronization op multiplies the state space.

#![cfg(loom)]

use nm_replog::{OpLog, Replicated, WireOp, OP_WORDS};

/// Model state: a running sum plus an op counter. `Pair` ops carry the
/// torn-read tripwire: the payload is `(x, 3x)` and `apply_op` asserts the
/// relation, so any torn slot read fails the model loudly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Sum {
    total: u64,
    ops: u64,
}

#[derive(Debug, Clone, Copy)]
struct Pair(u64);

impl WireOp for Pair {
    fn encode_op(self) -> [u64; OP_WORDS] {
        [self.0, self.0 * 3]
    }
    fn decode_op(words: [u64; OP_WORDS]) -> Self {
        assert_eq!(words[1], words[0] * 3, "torn slot read validated as intact");
        Pair(words[0])
    }
}

impl Replicated for Sum {
    type Op = Pair;
    fn apply_op(&mut self, op: Pair) {
        self.total += op.0;
        self.ops += 1;
    }
}

/// Invariant 1: two concurrent writers, no op lost or double-applied.
#[test]
fn no_lost_op_under_concurrent_append() {
    loom::model(|| {
        let log = OpLog::new(Sum::default(), 4);
        let hs: Vec<_> = [1u64, 2]
            .into_iter()
            .map(|v| {
                let log = log.clone();
                nm_sync::thread::spawn(move || log.append_batch(&[Pair(v), Pair(v * 10)]))
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let m = log.master_snapshot();
        assert_eq!(m.ops, 4, "an op was lost or double-applied");
        assert_eq!(m.total, 1 + 10 + 2 + 20);
        assert_eq!(log.tail(), 4);
    });
}

/// Invariant 2: a replica replaying concurrently with a writer converges
/// to the master state once the writer is done.
#[test]
fn replica_converges_with_concurrent_writer() {
    loom::model(|| {
        let log = OpLog::new(Sum::default(), 4);
        let writer = {
            let log = log.clone();
            nm_sync::thread::spawn(move || {
                log.append(Pair(5));
                log.append_batch(&[Pair(6), Pair(7)]);
            })
        };
        let reader = {
            let log = log.clone();
            nm_sync::thread::spawn(move || {
                let mut rep = log.replica();
                // Mid-flight reads observe a consistent prefix: `total`
                // is always a prefix-sum of {5, 6, 7} in append order.
                let s = rep.read();
                assert!(matches!(s.total, 0 | 5 | 11 | 18), "non-prefix state {s:?}");
                rep
            })
        };
        writer.join().unwrap();
        let mut rep = reader.join().unwrap();
        assert_eq!(*rep.read(), log.master_snapshot(), "replica diverged from master");
    });
}

/// Invariant 3: a 2-slot ring laps an in-flight reader; seqlock validation
/// must reject every torn slot (the `decode_op`/`apply_op` asserts) and
/// the lap falls back to a master resync that still converges.
#[test]
fn lapped_reader_never_tears_and_resyncs() {
    loom::model(|| {
        let log = OpLog::new(Sum::default(), 2);
        let writer = {
            let log = log.clone();
            nm_sync::thread::spawn(move || {
                // 4 ops through 2 slots: every slot is overwritten once.
                log.append_batch(&[Pair(1), Pair(2)]);
                log.append_batch(&[Pair(3), Pair(4)]);
            })
        };
        let reader = {
            let log = log.clone();
            nm_sync::thread::spawn(move || {
                let mut rep = log.replica();
                let s = rep.read();
                assert!(matches!(s.total, 0 | 1 | 3 | 6 | 10), "non-prefix state {s:?}");
                rep
            })
        };
        writer.join().unwrap();
        let mut rep = reader.join().unwrap();
        let m = log.master_snapshot();
        assert_eq!(m.total, 10);
        assert_eq!(*rep.read(), m, "lapped replica failed to converge");
    });
}
