//! # nm-replog — flat-combining operation log with per-worker replicas
//!
//! The engine's shared decision-path state (rail health, plan-cache epochs,
//! feedback corrections, counters) used to sit behind `nm-sync` locks, so
//! every worker added past the first contended on the same cache lines — the
//! "scaling wall" of ROADMAP item 3. This crate restructures that state in
//! the node-replication style: a single **master** copy plus a bounded
//! **operation log**, with each worker holding its own **replica** that it
//! catches up lock-free on read.
//!
//! * Writers call [`OpLog::append`]/[`OpLog::append_batch`]. The master
//!   mutex is the *flat-combining point*: whoever holds it encodes the ops
//!   into ring slots, applies them to the master state, and publishes the
//!   new tail — one lock acquisition amortizes a whole batch.
//! * Readers own a [`ReplicaHandle`]. [`ReplicaHandle::read`] replays any
//!   ops between the replica's applied cursor and the published tail by
//!   loading ring slots with seqlock validation — **no lock, no
//!   allocation** — then returns the replica state. A replica that lags by
//!   more than the ring capacity detects the lap and falls back to a
//!   (cold, locked) resync from the master.
//!
//! State types implement [`Replicated`]; their ops implement [`WireOp`] so
//! they flatten to a fixed [`OP_WORDS`]`× u64` wire form that fits the
//! atomic ring slots. Fixed-width ops are what make the read path provably
//! allocation-free (`nm-analyzer`'s transitive no-alloc gate covers it).
//!
//! ## Consistency contract
//!
//! The log is **linearizable at the master** (every op is applied to the
//! master state under the mutex, in append order) and **eventually
//! consistent at replicas**: a replica read observes a prefix of the op
//! sequence — never a torn op, never a reordered op, never a skipped op —
//! and observes every op appended before the `tail` load that started the
//! read. Staleness is bounded by one in-flight `append_batch`.
//!
//! Ring-slot protocol (the publish points, with their ordering contracts,
//! are documented inline):
//!
//! ```text
//! writer (combiner, under master lock)      reader (lock-free)
//!   marker.store(0)          Release          m1 = marker.load()   Acquire
//!   words[i].store(..)       Release          w  = words[i].load() Acquire
//!   marker.store(seq+1)      Release          fence(Acquire)
//!   ... batch ...                             m2 = marker.load()   Acquire
//!   tail.store(appended)     Release          valid ⇔ m1 == m2 == seq+1
//! ```

#![forbid(unsafe_code)]

use nm_sync::atomic::{fence, AtomicU64, Ordering};
use nm_sync::{Arc, Mutex};

/// Fixed wire width of one operation, in `u64` words.
pub const OP_WORDS: usize = 2;

/// An operation that flattens to a fixed-width wire form so it can travel
/// through the atomic ring slots.
pub trait WireOp: Copy {
    /// Encodes the op into its wire words.
    fn encode_op(self) -> [u64; OP_WORDS];
    /// Decodes wire words back into an op. Must be total: any bit pattern
    /// decodes to *some* op (unknown encodings to a no-op), never panics —
    /// the decode runs on the hot replica-read path.
    fn decode_op(words: [u64; OP_WORDS]) -> Self;
}

/// Replicated state: a value that advances deterministically by applying
/// ops, so master and replicas converge by replaying the same sequence.
pub trait Replicated: Clone {
    /// The operation type that mutates this state.
    type Op: WireOp;
    /// Applies one op. Must be deterministic and must not panic — it runs
    /// on the hot replica-read path.
    fn apply_op(&mut self, op: Self::Op);
}

/// One ring slot: a seqlock-validated cell holding one encoded op.
///
/// `marker` is `0` while the slot is empty or mid-write, and `seq + 1` once
/// the op with sequence number `seq` is fully published. Successive laps of
/// the ring write distinct markers (`seq + 1` vs `seq + capacity + 1`), so
/// a reader can always tell "the op I want" from "a later op that lapped
/// me" or "a write in progress".
#[derive(Debug)]
struct Slot {
    marker: AtomicU64,
    words: [AtomicU64; OP_WORDS],
}

impl Slot {
    fn new() -> Self {
        Slot { marker: AtomicU64::new(0), words: core::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

/// Master-side state guarded by the combining mutex.
#[derive(Debug)]
struct Master<S> {
    /// The authoritative state: every appended op has been applied to it.
    state: S,
    /// Total ops ever appended (== the sequence number of the next op).
    appended: u64,
}

#[derive(Debug)]
struct Shared<S> {
    slots: Box<[Slot]>,
    /// `capacity - 1`; capacity is a power of two so `seq & mask` indexes.
    mask: u64,
    /// Published op count: replicas may replay sequence numbers `< tail`
    /// without taking a lock.
    tail: AtomicU64,
    master: Mutex<Master<S>>,
}

/// The shared operation log. Cloning is cheap (an [`Arc`] bump); writers
/// and readers all hold clones of the same log.
#[derive(Debug)]
pub struct OpLog<S: Replicated> {
    shared: Arc<Shared<S>>,
}

impl<S: Replicated> Clone for OpLog<S> {
    fn clone(&self) -> Self {
        OpLog { shared: Arc::clone(&self.shared) }
    }
}

impl<S: Replicated> OpLog<S> {
    /// A log seeded with `initial` state and a ring of at least `capacity`
    /// slots (rounded up to a power of two, minimum 2).
    pub fn new(initial: S, capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot]> = (0..cap).map(|_| Slot::new()).collect();
        OpLog {
            shared: Arc::new(Shared {
                slots,
                mask: (cap as u64) - 1,
                tail: AtomicU64::new(0),
                master: Mutex::new(Master { state: initial, appended: 0 }),
            }),
        }
    }

    /// Appends one op. Equivalent to `append_batch(&[op])`.
    pub fn append(&self, op: S::Op) {
        self.append_batch(core::slice::from_ref(&op));
    }

    /// Appends a batch of ops under one master-lock acquisition (the flat-
    /// combining point): each op is encoded into its ring slot, applied to
    /// the master state, and the tail is published once at the end.
    pub fn append_batch(&self, ops: &[S::Op]) {
        if ops.is_empty() {
            return;
        }
        let mut m = self.shared.master.lock();
        for &op in ops {
            let seq = m.appended;
            let idx = (seq & self.shared.mask) as usize;
            if let Some(slot) = self.shared.slots.get(idx) {
                // Publish protocol, step 1 — invalidate. `Release` orders
                // this store before the word stores below in the eyes of
                // any reader that observes those words: a reader seeing a
                // fresh word and then re-reading the marker can only see 0
                // or a *later* publish, never the stale `seq' + 1` of the
                // op this slot held last lap (that would validate a torn
                // read).
                slot.marker.store(0, Ordering::Release);
                let wire = op.encode_op();
                for (cell, word) in slot.words.iter().zip(wire) {
                    // Step 2 — the payload. `Release` so the Acquire
                    // re-read of the marker on the reader side (after its
                    // Acquire fence) synchronizes with the invalidation
                    // above when a torn value was observed.
                    cell.store(word, Ordering::Release);
                }
                // Step 3 — publish. `Release` makes the word stores above
                // visible to any reader whose `Acquire` marker load sees
                // `seq + 1`.
                slot.marker.store(seq.wrapping_add(1), Ordering::Release);
            }
            m.state.apply_op(op);
            m.appended = seq.wrapping_add(1);
        }
        // Step 4 — publish the tail once for the whole batch. `Release`
        // pairs with the replica's `Acquire` tail load: a reader that
        // observes the new tail also observes every marker/word store of
        // the batch.
        self.shared.tail.store(m.appended, Ordering::Release);
    }

    /// Published op count. Replicas whose cursor equals this are current.
    #[must_use]
    pub fn tail(&self) -> u64 {
        self.shared.tail.load(Ordering::Acquire)
    }

    /// Total ops appended so far (reads the master under its lock).
    #[must_use]
    pub fn ops_appended(&self) -> u64 {
        self.shared.master.lock().appended
    }

    /// A clone of the authoritative master state (locked; not a hot-path
    /// call — replicas exist so readers never need this).
    #[must_use]
    pub fn master_snapshot(&self) -> S {
        self.shared.master.lock().state.clone()
    }

    /// A new replica, initialized current with the master.
    #[must_use]
    pub fn replica(&self) -> ReplicaHandle<S> {
        let (state, applied) = {
            let m = self.shared.master.lock();
            (m.state.clone(), m.appended)
        };
        ReplicaHandle {
            shared: Arc::clone(&self.shared),
            state,
            applied,
            ops_applied: 0,
            resyncs: 0,
        }
    }
}

/// Outcome of replaying a single ring slot.
enum ApplyOne {
    /// The op was read intact and applied.
    Applied,
    /// The slot no longer holds (or does not yet visibly hold) the wanted
    /// sequence number — the replica fell a full ring behind, or raced a
    /// write in progress. Recover via master resync.
    Lapped,
}

/// A single reader's private copy of the replicated state.
///
/// Not `Sync`/shared — each worker owns one. [`ReplicaHandle::read`] is the
/// hot-path entry: lock-free, allocation-free replay of pending ops, then a
/// borrow of the (now current) state.
#[derive(Debug)]
pub struct ReplicaHandle<S: Replicated> {
    shared: Arc<Shared<S>>,
    state: S,
    /// Sequence number of the next op to replay.
    applied: u64,
    ops_applied: u64,
    resyncs: u64,
}

impl<S: Replicated> ReplicaHandle<S> {
    /// Catches the replica up to the published tail and returns the state.
    /// Lock-free and allocation-free except when lapped (see
    /// [`Self::resync_from_master`]).
    // nm-analyzer: hot_path
    // nm-analyzer: no_alloc
    #[must_use]
    pub fn read(&mut self) -> &S {
        self.refresh();
        &self.state
    }

    /// The state as of the last catch-up, without replaying new ops.
    // nm-analyzer: hot_path
    // nm-analyzer: no_alloc
    #[must_use]
    pub fn peek(&self) -> &S {
        &self.state
    }

    /// Replays every op published since the last catch-up.
    // nm-analyzer: hot_path
    // nm-analyzer: no_alloc
    pub fn refresh(&mut self) {
        // `Acquire` pairs with the combiner's `Release` tail store: seeing
        // tail = t makes every marker/word store for sequences < t visible.
        let tail = self.shared.tail.load(Ordering::Acquire);
        while self.applied != tail {
            match self.apply_one(self.applied) {
                ApplyOne::Applied => {
                    self.applied = self.applied.wrapping_add(1);
                    self.ops_applied = self.ops_applied.wrapping_add(1);
                }
                ApplyOne::Lapped => {
                    self.resync_from_master();
                    return;
                }
            }
        }
    }

    /// Seqlock-validated read of the slot holding sequence `seq`.
    // nm-analyzer: hot_path
    // nm-analyzer: no_alloc
    fn apply_one(&mut self, seq: u64) -> ApplyOne {
        let idx = (seq & self.shared.mask) as usize;
        let Some(slot) = self.shared.slots.get(idx) else {
            return ApplyOne::Lapped; // unreachable: mask < slots.len()
        };
        // `Acquire` pairs with the combiner's publishing `Release` store;
        // seeing `seq + 1` makes the word stores of *this* op visible.
        let m1 = slot.marker.load(Ordering::Acquire);
        if m1 != seq.wrapping_add(1) {
            return ApplyOne::Lapped;
        }
        let mut wire = [0u64; OP_WORDS];
        for (word, cell) in wire.iter_mut().zip(slot.words.iter()) {
            *word = cell.load(Ordering::Acquire);
        }
        // Seqlock validation: the `Acquire` fence orders the word loads
        // above before the marker re-read below, so if a combiner overwrote
        // any word we read, the re-read cannot still see `seq + 1` — it
        // sees the invalidation 0 or a later publish, and we reject.
        fence(Ordering::Acquire);
        let m2 = slot.marker.load(Ordering::Acquire);
        if m2 != seq.wrapping_add(1) {
            return ApplyOne::Lapped;
        }
        self.state.apply_op(S::Op::decode_op(wire));
        ApplyOne::Applied
    }

    /// Cold lap-recovery: clone the master state under its lock. Counted in
    /// [`Self::resyncs`]; with a sanely sized ring this never happens in
    /// steady state.
    fn resync_from_master(&mut self) {
        // nm-analyzer: allow(hot-path-blocking) -- lap-recovery fallback: taken only when the replica fell a whole ring behind, never in steady-state reads
        let m = self.shared.master.lock();
        // `clone_from` (not `= clone()`) so the replica's existing buffers
        // are reused where the state type supports it; this is the one
        // allocating call reachable from the read path, taken only when the
        // replica fell a whole ring-capacity behind — never in steady state.
        self.state.clone_from(&m.state);
        self.applied = m.appended;
        self.resyncs = self.resyncs.wrapping_add(1);
    }

    /// Ops published but not yet replayed by this replica.
    #[must_use]
    pub fn lag(&self) -> u64 {
        self.shared.tail.load(Ordering::Acquire).wrapping_sub(self.applied)
    }

    /// Ops replayed from the ring over this replica's lifetime.
    #[must_use]
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Lap-recovery resyncs over this replica's lifetime.
    #[must_use]
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }
}

/// Pads and aligns `T` to 128 bytes so adjacent values never share a cache
/// line (covers the 128-byte prefetch pairs on modern x86 and Apple ARM).
/// Used for per-worker counter shards where false sharing would reintroduce
/// the very contention the replication design removes.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }
    /// Consumes the padding, returning the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> core::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> core::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    /// Toy replicated state: a pair of counters advanced by Add ops.
    #[derive(Debug, Clone, PartialEq, Eq, Default)]
    struct Counters {
        a: u64,
        b: u64,
    }

    #[derive(Debug, Clone, Copy)]
    enum CounterOp {
        AddA(u64),
        AddB(u64),
        Nop,
    }

    impl WireOp for CounterOp {
        fn encode_op(self) -> [u64; OP_WORDS] {
            match self {
                CounterOp::AddA(v) => [1, v],
                CounterOp::AddB(v) => [2, v],
                CounterOp::Nop => [0, 0],
            }
        }
        fn decode_op(words: [u64; OP_WORDS]) -> Self {
            match words {
                [1, v] => CounterOp::AddA(v),
                [2, v] => CounterOp::AddB(v),
                _ => CounterOp::Nop,
            }
        }
    }

    impl Replicated for Counters {
        type Op = CounterOp;
        fn apply_op(&mut self, op: CounterOp) {
            match op {
                CounterOp::AddA(v) => self.a += v,
                CounterOp::AddB(v) => self.b += v,
                CounterOp::Nop => {}
            }
        }
    }

    #[test]
    fn replica_replays_appended_ops() {
        let log = OpLog::new(Counters::default(), 8);
        let mut rep = log.replica();
        assert_eq!(*rep.read(), Counters { a: 0, b: 0 });

        log.append(CounterOp::AddA(3));
        log.append_batch(&[CounterOp::AddB(5), CounterOp::AddA(4)]);
        assert_eq!(rep.lag(), 3);
        assert_eq!(*rep.read(), Counters { a: 7, b: 5 });
        assert_eq!(rep.lag(), 0);
        assert_eq!(rep.ops_applied(), 3);
        assert_eq!(rep.resyncs(), 0);
        assert_eq!(log.ops_appended(), 3);
        assert_eq!(log.tail(), 3);
    }

    #[test]
    fn replica_matches_master_snapshot() {
        let log = OpLog::new(Counters::default(), 4);
        let mut rep = log.replica();
        for i in 0..100 {
            log.append(if i % 2 == 0 { CounterOp::AddA(i) } else { CounterOp::AddB(i) });
        }
        assert_eq!(*rep.read(), log.master_snapshot());
    }

    #[test]
    fn lapped_replica_resyncs_from_master() {
        // Ring of 2: appending 10 ops laps a stale replica several times.
        let log = OpLog::new(Counters::default(), 2);
        let mut rep = log.replica();
        for _ in 0..10 {
            log.append(CounterOp::AddA(1));
        }
        assert_eq!(rep.read().a, 10);
        assert!(rep.resyncs() >= 1, "a 2-slot ring must have forced a resync");
    }

    #[test]
    fn late_replica_starts_current() {
        let log = OpLog::new(Counters::default(), 8);
        log.append_batch(&[CounterOp::AddA(1), CounterOp::AddB(2)]);
        let mut rep = log.replica();
        assert_eq!(rep.lag(), 0);
        assert_eq!(*rep.read(), Counters { a: 1, b: 2 });
        assert_eq!(rep.ops_applied(), 0, "seeded from master, nothing replayed");
    }

    #[test]
    fn unknown_encodings_decode_to_nop() {
        let log = OpLog::new(Counters::default(), 8);
        log.append(CounterOp::Nop);
        let mut rep = log.replica();
        assert_eq!(*rep.read(), Counters::default());
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let log = OpLog::new(Counters::default(), 8);
        log.append_batch(&[]);
        assert_eq!(log.tail(), 0);
        assert_eq!(log.ops_appended(), 0);
    }

    #[test]
    fn cache_padded_is_line_aligned() {
        assert_eq!(core::mem::align_of::<CachePadded<u64>>(), 128);
        assert!(core::mem::size_of::<CachePadded<u64>>() >= 128);
        let mut p = CachePadded::new(7u64);
        *p += 1;
        assert_eq!(*p, 8);
        assert_eq!(p.into_inner(), 8);
    }

    #[test]
    fn concurrent_writers_and_readers_converge() {
        use nm_sync::thread;
        let log = OpLog::new(Counters::default(), 64);
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let log = log.clone();
                thread::spawn(move || {
                    for _ in 0..250 {
                        log.append_batch(&[CounterOp::AddA(1), CounterOp::AddB(2)]);
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let log = log.clone();
                thread::spawn(move || {
                    let mut rep = log.replica();
                    let mut last_a = 0;
                    for _ in 0..500 {
                        let s = rep.read();
                        // Monotonic prefix view: totals never go backwards
                        // and B stays exactly 2×A under this op mix.
                        assert!(s.a >= last_a);
                        assert_eq!(s.b, s.a * 2);
                        last_a = s.a;
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        for h in readers {
            h.join().unwrap();
        }
        let mut rep = log.replica();
        assert_eq!(*rep.read(), Counters { a: 1000, b: 2000 });
        assert_eq!(log.ops_appended(), 2000);
    }
}
