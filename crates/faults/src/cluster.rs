//! Cluster-scale fault schedules: `(node, rail)`-addressed failures.
//!
//! The 2-node [`FaultSchedule`](crate::FaultSchedule) addresses faults by
//! rail alone — on a point-to-point pair "rail 0" *is* a location. On an
//! N-node cluster the same physical rail fans out into one NIC port per
//! node, and failures are local: one node's Myrinet port dies while the
//! other fifteen keep using the rail. A [`ClusterFaultSchedule`] therefore
//! addresses each fault at a NIC **port** `(node, rail)`, with a node-wide
//! target (`rail: None`) covering every port at once — that is how
//! `NodeDown` is expressed: a simultaneous `RailDown` on all of the node's
//! ports, which no repair can route around and the collectives layer must
//! instead *re-plan* around.
//!
//! Only the availability/performance classes (`RailDown`, `TransientLoss`,
//! `LatencySpike`, `BandwidthDegrade`) are meaningful here: the cluster
//! transport is size-only (no real bytes move), so the corruption classes
//! are rejected at validation instead of being silently inert.
//!
//! Like its 2-node counterpart, a schedule validates its windows (against a
//! concrete [`ClusterSpec`], since port addresses must exist), compiles to
//! time-sorted [`ClusterTransition`]s, and drives a [`ClusterFaultState`]
//! whose lotteries draw from one seeded RNG — `(workload, schedule)` fully
//! determines a chaos run, and an empty schedule is guaranteed inert.

use crate::schedule::{Change, FaultKind, FaultSchedule};
use nm_model::{SimDuration, SimTime};
use nm_sim::{ClusterSpec, RailId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One scheduled cluster fault, addressed at a NIC port or a whole node.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterFaultSpec {
    /// Afflicted node.
    pub node: usize,
    /// Afflicted NIC port of that node; `None` strikes every port the node
    /// has (the node-down shape).
    pub rail: Option<RailId>,
    /// Onset instant (virtual time).
    pub at: SimTime,
    /// Failure model (availability/performance classes only).
    pub kind: FaultKind,
}

impl ClusterFaultSpec {
    /// A fault on one NIC port.
    pub fn port(node: usize, rail: RailId, at: SimTime, kind: FaultKind) -> Self {
        ClusterFaultSpec { node, rail: Some(rail), at, kind }
    }

    /// A whole-node outage: `RailDown` on every NIC port of `node` for
    /// `duration`. While it lasts the node can neither send nor receive.
    pub fn node_down(node: usize, at: SimTime, duration: SimDuration) -> Self {
        ClusterFaultSpec { node, rail: None, at, kind: FaultKind::RailDown { duration } }
    }
}

/// A state change at one instant on one NIC port, produced by compiling a
/// cluster schedule. Reuses the 2-node [`Change`] vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTransition {
    /// When the change takes effect.
    pub at: SimTime,
    /// Affected node.
    pub node: usize,
    /// Affected NIC port of that node.
    pub rail: RailId,
    /// The change itself.
    pub change: Change,
}

/// A deterministic, seedable fault schedule over an N-node topology.
///
/// ```
/// use nm_faults::cluster::{ClusterFaultSchedule, ClusterFaultSpec};
/// use nm_model::{SimDuration, SimTime};
/// use nm_sim::ClusterSpec;
///
/// let spec = ClusterSpec::homogeneous(8, 4, nm_model::builtin::paper_testbed());
/// let schedule = ClusterFaultSchedule::new(42)
///     .with(ClusterFaultSpec::node_down(3, SimTime::from_micros(500), SimDuration::from_micros(10_000)));
/// schedule.validate(&spec).unwrap();
/// // Two ports on node 3 go down and come back: 4 transitions.
/// assert_eq!(schedule.transitions(&spec).len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterFaultSchedule {
    seed: u64,
    faults: Vec<ClusterFaultSpec>,
}

impl ClusterFaultSchedule {
    /// An empty schedule whose probabilistic draws use `seed`.
    pub fn new(seed: u64) -> Self {
        ClusterFaultSchedule { seed, faults: Vec::new() }
    }

    /// The fault-free schedule — injection hooks stay completely inert.
    pub fn empty() -> Self {
        ClusterFaultSchedule::new(0)
    }

    /// Adds a fault (builder style).
    pub fn with(mut self, spec: ClusterFaultSpec) -> Self {
        self.faults.push(spec);
        self
    }

    /// The RNG seed for probabilistic fault models.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[ClusterFaultSpec] {
        &self.faults
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The NIC ports a fault expands to on `spec`.
    fn ports(spec: &ClusterSpec, f: &ClusterFaultSpec) -> Vec<RailId> {
        match f.rail {
            Some(r) => vec![r],
            None => {
                (0..spec.rail_count()).filter(|&r| spec.has_nic(f.node, r)).map(RailId).collect()
            }
        }
    }

    /// Checks addresses against `spec`, parameter sanity, fault-class
    /// applicability, and rejects overlapping same-class windows on one
    /// port (node-wide faults are expanded to their ports first).
    pub fn validate(&self, spec: &ClusterSpec) -> Result<(), String> {
        for f in &self.faults {
            if f.node >= spec.nodes.len() {
                return Err(format!(
                    "{} on node {}: cluster has {} nodes",
                    f.kind.label(),
                    f.node,
                    spec.nodes.len()
                ));
            }
            if let Some(r) = f.rail {
                if r.index() >= spec.rail_count() || !spec.has_nic(f.node, r.index()) {
                    return Err(format!(
                        "{} on node {}: no NIC on rail {:?}",
                        f.kind.label(),
                        f.node,
                        r
                    ));
                }
            } else if Self::ports(spec, f).is_empty() {
                return Err(format!("node {} has no NIC ports to fault", f.node));
            }
            if f.kind.duration() <= SimDuration::ZERO {
                return Err(format!(
                    "{} on node {}: duration must be positive",
                    f.kind.label(),
                    f.node
                ));
            }
            match f.kind {
                FaultKind::RailDown { .. } => {}
                FaultKind::TransientLoss { prob, .. } => {
                    if !(0.0..=1.0).contains(&prob) {
                        return Err(format!("transient-loss prob {prob} outside [0, 1]"));
                    }
                }
                FaultKind::LatencySpike { extra, .. } => {
                    if extra <= SimDuration::ZERO {
                        return Err("latency-spike extra latency must be positive".into());
                    }
                }
                FaultKind::BandwidthDegrade { factor, .. } => {
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(format!("bandwidth-degrade factor {factor} outside (0, 1]"));
                    }
                }
                // The cluster transport moves sizes, not bytes: there is
                // nothing to corrupt, duplicate, or reorder at this layer.
                _ => {
                    return Err(format!(
                        "{} is a corruption-class fault; the cluster transport is size-only",
                        f.kind.label()
                    ));
                }
            }
        }
        for (i, a) in self.faults.iter().enumerate() {
            for b in &self.faults[i + 1..] {
                if a.node != b.node || !FaultSchedule::same_class(&a.kind, &b.kind) {
                    continue;
                }
                let shared_port =
                    Self::ports(spec, a).iter().any(|p| Self::ports(spec, b).contains(p));
                if shared_port
                    && FaultSchedule::windows_overlap(
                        a.at,
                        a.kind.duration(),
                        b.at,
                        b.kind.duration(),
                    )
                {
                    return Err(format!(
                        "overlapping {} windows on node {} (at {} and {})",
                        a.kind.label(),
                        a.node,
                        a.at,
                        b.at
                    ));
                }
            }
        }
        Ok(())
    }

    /// Compiles the schedule into a time-sorted per-port transition list.
    /// Ties are broken by (node, rail, end-before-begin) so a back-to-back
    /// window on one port closes before the next opens.
    pub fn transitions(&self, spec: &ClusterSpec) -> Vec<ClusterTransition> {
        let mut out = Vec::with_capacity(self.faults.len() * 2);
        for f in &self.faults {
            let end_at = f.at + f.kind.duration();
            let (begin, end) = match f.kind {
                FaultKind::RailDown { .. } => (Change::DownBegin, Change::DownEnd),
                FaultKind::TransientLoss { prob, .. } => {
                    (Change::LossBegin { prob }, Change::LossEnd)
                }
                FaultKind::LatencySpike { extra, .. } => {
                    (Change::ShapeBegin { time_scale: 1.0, extra_latency: extra }, Change::ShapeEnd)
                }
                FaultKind::BandwidthDegrade { factor, .. } => (
                    Change::ShapeBegin {
                        time_scale: 1.0 / factor,
                        extra_latency: SimDuration::ZERO,
                    },
                    Change::ShapeEnd,
                ),
                // Rejected by validate; compiling them anyway would put the
                // runtime state in a window it never exits.
                _ => continue,
            };
            for port in Self::ports(spec, f) {
                out.push(ClusterTransition { at: f.at, node: f.node, rail: port, change: begin });
                out.push(ClusterTransition { at: end_at, node: f.node, rail: port, change: end });
            }
        }
        out.sort_by_key(|t| {
            let is_begin = matches!(
                t.change,
                Change::DownBegin | Change::LossBegin { .. } | Change::ShapeBegin { .. }
            );
            (t.at, t.node, t.rail.index(), is_begin)
        });
        out
    }
}

/// Open fault windows per NIC port, plus the deterministic loss RNG.
///
/// The shaping slot is mirrored here for introspection (`any_active`), but
/// its effect lives in the simulator's per-NIC shaping table — the driver
/// forwards `ShapeBegin`/`ShapeEnd` to `Simulator::set_nic_fault`.
#[derive(Debug)]
pub struct ClusterFaultState {
    /// `down[node][rail]` — true while the port is hard-down.
    down: Vec<Vec<bool>>,
    /// `loss[node][rail]` — open transient-loss window probability.
    loss: Vec<Vec<Option<f64>>>,
    /// `shape[node][rail]` — open shaping window.
    shape: Vec<Vec<(f64, SimDuration)>>,
    /// `ports[node][rail]` — whether the node has a NIC there at all
    /// (node-down queries must not count absent ports as up).
    ports: Vec<Vec<bool>>,
    rng: StdRng,
}

impl ClusterFaultState {
    /// All-healthy state for `spec`, drawing from `seed`.
    pub fn new(spec: &ClusterSpec, seed: u64) -> Self {
        let rails = spec.rail_count();
        let nodes = spec.nodes.len();
        let ports = (0..nodes).map(|n| (0..rails).map(|r| spec.has_nic(n, r)).collect()).collect();
        ClusterFaultState {
            down: vec![vec![false; rails]; nodes],
            loss: vec![vec![None; rails]; nodes],
            shape: vec![vec![(1.0, SimDuration::ZERO); rails]; nodes],
            ports,
            rng: StdRng::seed_from_u64(seed ^ 0x6e6d_636c_6600),
        }
    }

    /// Applies one transition. Corruption-class changes (rejected at
    /// validation) are ignored rather than panicking.
    pub fn apply(&mut self, t: &ClusterTransition) {
        let (n, r) = (t.node, t.rail.index());
        match t.change {
            Change::DownBegin => self.down[n][r] = true,
            Change::DownEnd => self.down[n][r] = false,
            Change::LossBegin { prob } => self.loss[n][r] = Some(prob),
            Change::LossEnd => self.loss[n][r] = None,
            Change::ShapeBegin { time_scale, extra_latency } => {
                self.shape[n][r] = (time_scale, extra_latency)
            }
            Change::ShapeEnd => self.shape[n][r] = (1.0, SimDuration::ZERO),
            _ => {}
        }
    }

    /// True while the port `(node, rail)` is hard-down.
    pub fn is_down(&self, node: usize, rail: RailId) -> bool {
        self.down[node][rail.index()]
    }

    /// True while *every* NIC port of `node` is down — the node can neither
    /// send nor receive and counts as dead for DAG repair.
    pub fn node_is_down(&self, node: usize) -> bool {
        let mut any = false;
        for (r, &present) in self.ports[node].iter().enumerate() {
            if present {
                if !self.down[node][r] {
                    return false;
                }
                any = true;
            }
        }
        any
    }

    /// Draws the loss lottery for one port. Consumes randomness only while
    /// a loss window is open, so fault-free ports never perturb the stream.
    pub fn should_drop(&mut self, node: usize, rail: RailId) -> bool {
        match self.loss[node][rail.index()] {
            None => false,
            Some(prob) => self.rng.random_range(0.0..1.0) < prob,
        }
    }

    /// Current `(time_scale, extra_latency)` shaping of a port.
    pub fn shaping(&self, node: usize, rail: RailId) -> (f64, SimDuration) {
        self.shape[node][rail.index()]
    }

    /// True when any window is open on any port.
    pub fn any_active(&self) -> bool {
        self.down.iter().flatten().any(|&d| d)
            || self.loss.iter().flatten().any(|l| l.is_some())
            || self.shape.iter().flatten().any(|&s| s != (1.0, SimDuration::ZERO))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_model::builtin;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }
    fn d(us: u64) -> SimDuration {
        SimDuration::from_micros(us)
    }
    fn spec(n: usize) -> ClusterSpec {
        ClusterSpec::homogeneous(n, 4, builtin::paper_testbed())
    }

    #[test]
    fn empty_schedule_is_inert() {
        let s = ClusterFaultSchedule::empty();
        assert!(s.is_empty());
        assert!(s.validate(&spec(8)).is_ok());
        assert!(s.transitions(&spec(8)).is_empty());
        assert!(!ClusterFaultState::new(&spec(8), 0).any_active());
    }

    #[test]
    fn node_down_expands_to_every_nic_port() {
        let sp = spec(4);
        let s = ClusterFaultSchedule::new(1).with(ClusterFaultSpec::node_down(2, t(100), d(50)));
        s.validate(&sp).unwrap();
        let ts = s.transitions(&sp);
        // paper_testbed has 2 rails: 2 ports x (begin + end).
        assert_eq!(ts.len(), 4);
        assert!(ts.iter().all(|tr| tr.node == 2));

        let mut state = ClusterFaultState::new(&sp, 1);
        for tr in ts.iter().filter(|tr| tr.change == Change::DownBegin) {
            state.apply(tr);
        }
        assert!(state.node_is_down(2));
        assert!(!state.node_is_down(1));
        assert!(state.is_down(2, RailId(0)));
        assert!(state.is_down(2, RailId(1)));
    }

    #[test]
    fn one_downed_port_does_not_kill_the_node() {
        let sp = spec(4);
        let s = ClusterFaultSchedule::new(1).with(ClusterFaultSpec::port(
            1,
            RailId(0),
            t(0),
            FaultKind::RailDown { duration: d(10) },
        ));
        s.validate(&sp).unwrap();
        let mut state = ClusterFaultState::new(&sp, 1);
        for tr in s.transitions(&sp).iter().filter(|tr| tr.change == Change::DownBegin) {
            state.apply(tr);
        }
        assert!(state.is_down(1, RailId(0)));
        assert!(!state.is_down(1, RailId(1)));
        assert!(!state.node_is_down(1), "one live port keeps the node up");
    }

    #[test]
    fn validation_rejects_bad_addresses_and_classes() {
        let sp = spec(4);
        let bad_node =
            ClusterFaultSchedule::new(0).with(ClusterFaultSpec::node_down(9, t(0), d(1)));
        assert!(bad_node.validate(&sp).is_err());

        let bad_rail = ClusterFaultSchedule::new(0).with(ClusterFaultSpec::port(
            0,
            RailId(7),
            t(0),
            FaultKind::RailDown { duration: d(1) },
        ));
        assert!(bad_rail.validate(&sp).is_err());

        let corruption = ClusterFaultSchedule::new(0).with(ClusterFaultSpec::port(
            0,
            RailId(0),
            t(0),
            FaultKind::PayloadCorrupt { prob: 0.5, duration: d(1) },
        ));
        let err = corruption.validate(&sp).unwrap_err();
        assert!(err.contains("size-only"), "{err}");

        // A port the node does not have.
        let mut partial = sp.clone();
        partial.nodes[3].rails = Some(vec![1]);
        let absent = ClusterFaultSchedule::new(0).with(ClusterFaultSpec::port(
            3,
            RailId(0),
            t(0),
            FaultKind::RailDown { duration: d(1) },
        ));
        assert!(absent.validate(&partial).is_err());
    }

    #[test]
    fn overlap_is_rejected_per_port_across_node_wide_targets() {
        let sp = spec(4);
        // Node-wide down overlapping a port-down on the same node: the
        // expanded port sets intersect.
        let s = ClusterFaultSchedule::new(0)
            .with(ClusterFaultSpec::node_down(1, t(0), d(100)))
            .with(ClusterFaultSpec::port(
                1,
                RailId(1),
                t(50),
                FaultKind::RailDown { duration: d(100) },
            ));
        assert!(s.validate(&sp).is_err());
        // Same two windows on different nodes are fine.
        let disjoint = ClusterFaultSchedule::new(0)
            .with(ClusterFaultSpec::node_down(1, t(0), d(100)))
            .with(ClusterFaultSpec::port(
                2,
                RailId(1),
                t(50),
                FaultKind::RailDown { duration: d(100) },
            ));
        assert!(disjoint.validate(&sp).is_ok());
    }

    #[test]
    fn transitions_sort_ends_before_begins_per_port() {
        let sp = spec(2);
        let s = ClusterFaultSchedule::new(0)
            .with(ClusterFaultSpec::port(
                0,
                RailId(0),
                t(100),
                FaultKind::RailDown { duration: d(50) },
            ))
            .with(ClusterFaultSpec::port(
                0,
                RailId(0),
                t(150),
                FaultKind::RailDown { duration: d(10) },
            ));
        s.validate(&sp).unwrap();
        let ts = s.transitions(&sp);
        assert_eq!(ts.len(), 4);
        assert_eq!(ts[1].at, t(150));
        assert_eq!(ts[1].change, Change::DownEnd);
        assert_eq!(ts[2].at, t(150));
        assert_eq!(ts[2].change, Change::DownBegin);
    }

    #[test]
    fn shaping_faults_compile_to_per_port_shape_changes() {
        let sp = spec(2);
        let s = ClusterFaultSchedule::new(0)
            .with(ClusterFaultSpec::port(
                1,
                RailId(0),
                t(0),
                FaultKind::BandwidthDegrade { factor: 0.25, duration: d(10) },
            ))
            .with(ClusterFaultSpec::port(
                0,
                RailId(1),
                t(0),
                FaultKind::LatencySpike { extra: d(500), duration: d(10) },
            ));
        s.validate(&sp).unwrap();
        let ts = s.transitions(&sp);
        let mut state = ClusterFaultState::new(&sp, 0);
        for tr in &ts {
            if matches!(tr.change, Change::ShapeBegin { .. }) {
                state.apply(tr);
            }
        }
        assert_eq!(state.shaping(1, RailId(0)), (4.0, SimDuration::ZERO));
        assert_eq!(state.shaping(0, RailId(1)), (1.0, d(500)));
        assert_eq!(state.shaping(0, RailId(0)), (1.0, SimDuration::ZERO));
    }

    #[test]
    fn loss_lotteries_are_deterministic_and_lazy() {
        let sp = spec(2);
        let draw = |seed: u64| {
            let mut s = ClusterFaultState::new(&sp, seed);
            s.apply(&ClusterTransition {
                at: SimTime::ZERO,
                node: 0,
                rail: RailId(0),
                change: Change::LossBegin { prob: 0.5 },
            });
            (0..64).map(|_| s.should_drop(0, RailId(0))).collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3), "same seed, same lottery");
        assert_ne!(draw(3), draw(4), "different seeds diverge");

        // Closed windows never draw: the stream stays aligned.
        let mut a = ClusterFaultState::new(&sp, 9);
        for _ in 0..100 {
            assert!(!a.should_drop(1, RailId(1)));
        }
        let mut b = ClusterFaultState::new(&sp, 9);
        let open = ClusterTransition {
            at: SimTime::ZERO,
            node: 0,
            rail: RailId(0),
            change: Change::LossBegin { prob: 0.5 },
        };
        a.apply(&open);
        b.apply(&open);
        assert_eq!(a.should_drop(0, RailId(0)), b.should_drop(0, RailId(0)));
    }
}
