//! Fault schedules: what goes wrong, where, and when.
//!
//! A [`FaultSchedule`] is a declarative, validated list of [`FaultSpec`]s —
//! each one a rail, an onset instant and a [`FaultKind`]. Schedules carry
//! the RNG seed for any probabilistic model (transient loss), so a chaos
//! run is a pure function of `(workload, schedule)`: replaying the same
//! schedule reproduces the same failures, retries and recoveries bit for
//! bit.
//!
//! Consumers do not interpret specs directly; they compile the schedule
//! into a time-sorted list of [`Transition`]s (every fault contributes a
//! begin and an end) and feed those to a
//! [`FaultState`](crate::state::FaultState) as virtual time passes.

use nm_model::{SimDuration, SimTime};
use nm_sim::RailId;

/// What kind of failure strikes a rail.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The rail is hard-down: submissions fail immediately and in-flight
    /// chunks on the rail are lost at onset.
    RailDown {
        /// How long the outage lasts.
        duration: SimDuration,
    },
    /// Each chunk submitted while the window is open is independently lost
    /// with probability `prob` (send side completes; delivery never does).
    TransientLoss {
        /// Loss probability in `[0, 1]`.
        prob: f64,
        /// How long the lossy window lasts.
        duration: SimDuration,
    },
    /// Every chunk started while the window is open pays `extra` additional
    /// latency (a congested or flapping path).
    LatencySpike {
        /// Added one-way latency.
        extra: SimDuration,
        /// How long the spike lasts.
        duration: SimDuration,
    },
    /// The rail's effective bandwidth drops to `factor` of nominal: modeled
    /// durations are stretched by `1/factor` while the window is open.
    BandwidthDegrade {
        /// Remaining bandwidth fraction in `(0, 1]`.
        factor: f64,
        /// How long the degradation lasts.
        duration: SimDuration,
    },
    /// Each chunk submitted while the window is open independently has its
    /// payload bytes corrupted in flight with probability `prob` (a flaky
    /// link or DMA path flipping bits past the NIC checksum).
    PayloadCorrupt {
        /// Corruption probability in `[0, 1]`.
        prob: f64,
        /// How long the corrupting window lasts.
        duration: SimDuration,
    },
    /// Each chunk submitted while the window is open independently has its
    /// *header* bytes corrupted with probability `prob` — the nastier class,
    /// since a mangled header misroutes the chunk rather than just
    /// damaging data.
    HeaderCorrupt {
        /// Corruption probability in `[0, 1]`.
        prob: f64,
        /// How long the corrupting window lasts.
        duration: SimDuration,
    },
    /// Each chunk delivered while the window is open is independently
    /// delivered *twice* with probability `prob` (a retransmit-happy link
    /// layer).
    DuplicateChunk {
        /// Duplication probability in `[0, 1]`.
        prob: f64,
        /// How long the duplicating window lasts.
        duration: SimDuration,
    },
    /// Deliveries on the rail are held while the window is open and
    /// released in *reverse* arrival order when it closes — the worst-case
    /// adversary for reassembly and per-flow sequencing.
    ChunkReorderStorm {
        /// How long deliveries are held.
        duration: SimDuration,
    },
}

impl FaultKind {
    /// How long the fault window stays open.
    pub fn duration(&self) -> SimDuration {
        match self {
            FaultKind::RailDown { duration }
            | FaultKind::TransientLoss { duration, .. }
            | FaultKind::LatencySpike { duration, .. }
            | FaultKind::BandwidthDegrade { duration, .. }
            | FaultKind::PayloadCorrupt { duration, .. }
            | FaultKind::HeaderCorrupt { duration, .. }
            | FaultKind::DuplicateChunk { duration, .. }
            | FaultKind::ChunkReorderStorm { duration } => *duration,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::RailDown { .. } => "rail-down",
            FaultKind::TransientLoss { .. } => "transient-loss",
            FaultKind::LatencySpike { .. } => "latency-spike",
            FaultKind::BandwidthDegrade { .. } => "bandwidth-degrade",
            FaultKind::PayloadCorrupt { .. } => "payload-corrupt",
            FaultKind::HeaderCorrupt { .. } => "header-corrupt",
            FaultKind::DuplicateChunk { .. } => "duplicate-chunk",
            FaultKind::ChunkReorderStorm { .. } => "reorder-storm",
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Afflicted rail.
    pub rail: RailId,
    /// Onset instant (virtual time).
    pub at: SimTime,
    /// Failure model.
    pub kind: FaultKind,
}

/// A state change at one instant, produced by compiling a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// When the change takes effect.
    pub at: SimTime,
    /// Affected rail.
    pub rail: RailId,
    /// The change itself.
    pub change: Change,
}

/// The state change carried by a [`Transition`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Change {
    /// Rail goes hard-down.
    DownBegin,
    /// Rail hardware is reachable again (health layer still gates traffic).
    DownEnd,
    /// Probabilistic chunk loss starts.
    LossBegin {
        /// Loss probability in `[0, 1]`.
        prob: f64,
    },
    /// Probabilistic chunk loss ends.
    LossEnd,
    /// Duration shaping starts: modeled durations are scaled by
    /// `time_scale` and `extra_latency` is added to the one-way path.
    ShapeBegin {
        /// Multiplicative duration stretch (`1.0` = nominal).
        time_scale: f64,
        /// Additive one-way latency.
        extra_latency: SimDuration,
    },
    /// Duration shaping ends.
    ShapeEnd,
    /// Probabilistic in-flight corruption starts (`header` selects which
    /// bytes the fault mangles: header vs payload).
    CorruptBegin {
        /// Corruption probability in `[0, 1]`.
        prob: f64,
        /// True = header bytes, false = payload bytes.
        header: bool,
    },
    /// Probabilistic corruption ends.
    CorruptEnd {
        /// Which corruption slot closes (header vs payload).
        header: bool,
    },
    /// Probabilistic chunk duplication starts.
    DupBegin {
        /// Duplication probability in `[0, 1]`.
        prob: f64,
    },
    /// Probabilistic chunk duplication ends.
    DupEnd,
    /// Deliveries start being held for reversed release.
    ReorderBegin,
    /// Held deliveries are released in reverse arrival order.
    ReorderEnd,
}

/// A deterministic, seedable fault schedule.
///
/// ```
/// use nm_faults::{FaultKind, FaultSchedule, FaultSpec};
/// use nm_model::{SimDuration, SimTime};
/// use nm_sim::RailId;
///
/// let schedule = FaultSchedule::new(42).with(FaultSpec {
///     rail: RailId(0),
///     at: SimTime::from_micros(3_000),
///     kind: FaultKind::RailDown { duration: SimDuration::from_micros(20_000) },
/// });
/// schedule.validate().unwrap();
/// let ts = schedule.transitions();
/// assert_eq!(ts.len(), 2); // DownBegin at 3ms, DownEnd at 23ms
/// assert!(ts[0].at < ts[1].at);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    seed: u64,
    faults: Vec<FaultSpec>,
}

impl FaultSchedule {
    /// An empty schedule whose probabilistic draws use `seed`.
    pub fn new(seed: u64) -> Self {
        FaultSchedule { seed, faults: Vec::new() }
    }

    /// The fault-free schedule — injection hooks stay completely inert.
    pub fn empty() -> Self {
        FaultSchedule::new(0)
    }

    /// Adds a fault (builder style).
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.faults.push(spec);
        self
    }

    /// The RNG seed for probabilistic fault models.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Checks parameter sanity and rejects overlapping windows of the same
    /// class on one rail (the runtime state tracks one active window per
    /// class per rail).
    pub fn validate(&self) -> Result<(), String> {
        for f in &self.faults {
            if f.kind.duration() <= SimDuration::ZERO {
                return Err(format!(
                    "{} on {:?}: duration must be positive",
                    f.kind.label(),
                    f.rail
                ));
            }
            match f.kind {
                FaultKind::TransientLoss { prob, .. } => {
                    if !(0.0..=1.0).contains(&prob) {
                        return Err(format!("transient-loss prob {prob} outside [0, 1]"));
                    }
                }
                FaultKind::BandwidthDegrade { factor, .. } => {
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(format!("bandwidth-degrade factor {factor} outside (0, 1]"));
                    }
                }
                FaultKind::LatencySpike { extra, .. } => {
                    if extra <= SimDuration::ZERO {
                        return Err("latency-spike extra latency must be positive".into());
                    }
                }
                FaultKind::PayloadCorrupt { prob, .. }
                | FaultKind::HeaderCorrupt { prob, .. }
                | FaultKind::DuplicateChunk { prob, .. } => {
                    if !(0.0..=1.0).contains(&prob) {
                        return Err(format!("{} prob {prob} outside [0, 1]", f.kind.label()));
                    }
                }
                FaultKind::RailDown { .. } | FaultKind::ChunkReorderStorm { .. } => {}
            }
        }
        for (i, a) in self.faults.iter().enumerate() {
            for b in &self.faults[i + 1..] {
                if a.rail == b.rail && Self::same_class(&a.kind, &b.kind) && Self::overlap(a, b) {
                    return Err(format!(
                        "overlapping {} windows on {:?} (at {} and {})",
                        a.kind.label(),
                        a.rail,
                        a.at,
                        b.at
                    ));
                }
            }
        }
        Ok(())
    }

    pub(crate) fn same_class(a: &FaultKind, b: &FaultKind) -> bool {
        use FaultKind::*;
        matches!(
            (a, b),
            (RailDown { .. }, RailDown { .. })
                | (TransientLoss { .. }, TransientLoss { .. })
                | (LatencySpike { .. }, LatencySpike { .. } | BandwidthDegrade { .. })
                | (BandwidthDegrade { .. }, LatencySpike { .. } | BandwidthDegrade { .. })
                | (PayloadCorrupt { .. }, PayloadCorrupt { .. })
                | (HeaderCorrupt { .. }, HeaderCorrupt { .. })
                | (DuplicateChunk { .. }, DuplicateChunk { .. })
                | (ChunkReorderStorm { .. }, ChunkReorderStorm { .. })
        )
    }

    pub(crate) fn windows_overlap(
        a_at: SimTime,
        a_dur: SimDuration,
        b_at: SimTime,
        b_dur: SimDuration,
    ) -> bool {
        a_at < b_at + b_dur && b_at < a_at + a_dur
    }

    fn overlap(a: &FaultSpec, b: &FaultSpec) -> bool {
        Self::windows_overlap(a.at, a.kind.duration(), b.at, b.kind.duration())
    }

    /// Compiles the schedule into a time-sorted transition list. Ties are
    /// broken by (rail, end-before-begin) so a back-to-back window on one
    /// rail closes before the next opens.
    pub fn transitions(&self) -> Vec<Transition> {
        let mut out = Vec::with_capacity(self.faults.len() * 2);
        for f in &self.faults {
            let end_at = f.at + f.kind.duration();
            let (begin, end) = match f.kind {
                FaultKind::RailDown { .. } => (Change::DownBegin, Change::DownEnd),
                FaultKind::TransientLoss { prob, .. } => {
                    (Change::LossBegin { prob }, Change::LossEnd)
                }
                FaultKind::LatencySpike { extra, .. } => {
                    (Change::ShapeBegin { time_scale: 1.0, extra_latency: extra }, Change::ShapeEnd)
                }
                FaultKind::BandwidthDegrade { factor, .. } => (
                    Change::ShapeBegin {
                        time_scale: 1.0 / factor,
                        extra_latency: SimDuration::ZERO,
                    },
                    Change::ShapeEnd,
                ),
                FaultKind::PayloadCorrupt { prob, .. } => (
                    Change::CorruptBegin { prob, header: false },
                    Change::CorruptEnd { header: false },
                ),
                FaultKind::HeaderCorrupt { prob, .. } => (
                    Change::CorruptBegin { prob, header: true },
                    Change::CorruptEnd { header: true },
                ),
                FaultKind::DuplicateChunk { prob, .. } => {
                    (Change::DupBegin { prob }, Change::DupEnd)
                }
                FaultKind::ChunkReorderStorm { .. } => (Change::ReorderBegin, Change::ReorderEnd),
            };
            out.push(Transition { at: f.at, rail: f.rail, change: begin });
            out.push(Transition { at: end_at, rail: f.rail, change: end });
        }
        out.sort_by_key(|t| {
            let is_begin = matches!(
                t.change,
                Change::DownBegin
                    | Change::LossBegin { .. }
                    | Change::ShapeBegin { .. }
                    | Change::CorruptBegin { .. }
                    | Change::DupBegin { .. }
                    | Change::ReorderBegin
            );
            (t.at, t.rail.index(), is_begin)
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }
    fn d(us: u64) -> SimDuration {
        SimDuration::from_micros(us)
    }

    #[test]
    fn empty_schedule_has_no_transitions() {
        let s = FaultSchedule::empty();
        assert!(s.is_empty());
        assert!(s.validate().is_ok());
        assert!(s.transitions().is_empty());
    }

    #[test]
    fn transitions_are_time_sorted_with_ends_before_begins() {
        let s = FaultSchedule::new(1)
            .with(FaultSpec {
                rail: RailId(0),
                at: t(100),
                kind: FaultKind::RailDown { duration: d(50) },
            })
            .with(FaultSpec {
                rail: RailId(0),
                at: t(150),
                kind: FaultKind::RailDown { duration: d(10) },
            });
        s.validate().unwrap();
        let ts = s.transitions();
        assert_eq!(ts.len(), 4);
        // At t=150 the first outage ends before the second begins.
        assert_eq!(ts[1].at, t(150));
        assert_eq!(ts[1].change, Change::DownEnd);
        assert_eq!(ts[2].at, t(150));
        assert_eq!(ts[2].change, Change::DownBegin);
    }

    #[test]
    fn degrade_maps_to_time_scale_and_spike_to_extra_latency() {
        let s = FaultSchedule::new(1)
            .with(FaultSpec {
                rail: RailId(1),
                at: t(0),
                kind: FaultKind::BandwidthDegrade { factor: 0.25, duration: d(10) },
            })
            .with(FaultSpec {
                rail: RailId(0),
                at: t(0),
                kind: FaultKind::LatencySpike { extra: d(500), duration: d(10) },
            });
        let ts = s.transitions();
        let shape_of = |rail: RailId| {
            ts.iter()
                .find_map(|tr| match tr.change {
                    Change::ShapeBegin { time_scale, extra_latency } if tr.rail == rail => {
                        Some((time_scale, extra_latency))
                    }
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(shape_of(RailId(1)), (4.0, SimDuration::ZERO));
        assert_eq!(shape_of(RailId(0)), (1.0, d(500)));
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let bad = |kind| {
            FaultSchedule::new(0).with(FaultSpec { rail: RailId(0), at: t(0), kind }).validate()
        };
        assert!(bad(FaultKind::RailDown { duration: SimDuration::ZERO }).is_err());
        assert!(bad(FaultKind::TransientLoss { prob: 1.5, duration: d(10) }).is_err());
        assert!(bad(FaultKind::BandwidthDegrade { factor: 0.0, duration: d(10) }).is_err());
        assert!(bad(FaultKind::BandwidthDegrade { factor: 1.5, duration: d(10) }).is_err());
        assert!(bad(FaultKind::LatencySpike { extra: SimDuration::ZERO, duration: d(10) }).is_err());
        assert!(bad(FaultKind::PayloadCorrupt { prob: -0.1, duration: d(10) }).is_err());
        assert!(bad(FaultKind::HeaderCorrupt { prob: 2.0, duration: d(10) }).is_err());
        assert!(bad(FaultKind::DuplicateChunk { prob: 1.01, duration: d(10) }).is_err());
        assert!(bad(FaultKind::ChunkReorderStorm { duration: SimDuration::ZERO }).is_err());
    }

    #[test]
    fn corruption_class_faults_compile_to_typed_transitions() {
        let s = FaultSchedule::new(5)
            .with(FaultSpec {
                rail: RailId(0),
                at: t(10),
                kind: FaultKind::PayloadCorrupt { prob: 0.5, duration: d(20) },
            })
            .with(FaultSpec {
                rail: RailId(0),
                at: t(10),
                kind: FaultKind::HeaderCorrupt { prob: 0.25, duration: d(20) },
            })
            .with(FaultSpec {
                rail: RailId(1),
                at: t(15),
                kind: FaultKind::DuplicateChunk { prob: 1.0, duration: d(5) },
            })
            .with(FaultSpec {
                rail: RailId(1),
                at: t(30),
                kind: FaultKind::ChunkReorderStorm { duration: d(40) },
            });
        s.validate().unwrap();
        let ts = s.transitions();
        assert_eq!(ts.len(), 8);
        assert!(ts.iter().any(|tr| tr.change == Change::CorruptBegin { prob: 0.5, header: false }));
        assert!(ts.iter().any(|tr| tr.change == Change::CorruptBegin { prob: 0.25, header: true }));
        assert!(ts.iter().any(|tr| tr.change == Change::DupBegin { prob: 1.0 }));
        let reorder_end = ts.iter().find(|tr| tr.change == Change::ReorderEnd).unwrap();
        assert_eq!(reorder_end.at, t(70));
    }

    #[test]
    fn header_and_payload_corruption_are_distinct_classes() {
        // Overlapping payload + header windows on one rail are fine (they
        // occupy different slots) ...
        let cross = FaultSchedule::new(0)
            .with(FaultSpec {
                rail: RailId(0),
                at: t(0),
                kind: FaultKind::PayloadCorrupt { prob: 0.5, duration: d(100) },
            })
            .with(FaultSpec {
                rail: RailId(0),
                at: t(50),
                kind: FaultKind::HeaderCorrupt { prob: 0.5, duration: d(100) },
            });
        assert!(cross.validate().is_ok());
        // ... but two payload windows overlapping are rejected.
        let same = FaultSchedule::new(0)
            .with(FaultSpec {
                rail: RailId(0),
                at: t(0),
                kind: FaultKind::PayloadCorrupt { prob: 0.5, duration: d(100) },
            })
            .with(FaultSpec {
                rail: RailId(0),
                at: t(50),
                kind: FaultKind::PayloadCorrupt { prob: 0.1, duration: d(100) },
            });
        assert!(same.validate().is_err());
    }

    #[test]
    fn validation_rejects_same_class_overlap_on_one_rail() {
        let overlapping = FaultSchedule::new(0)
            .with(FaultSpec {
                rail: RailId(0),
                at: t(0),
                kind: FaultKind::RailDown { duration: d(100) },
            })
            .with(FaultSpec {
                rail: RailId(0),
                at: t(50),
                kind: FaultKind::RailDown { duration: d(100) },
            });
        assert!(overlapping.validate().is_err());
        // Same windows on different rails are fine.
        let disjoint_rails = FaultSchedule::new(0)
            .with(FaultSpec {
                rail: RailId(0),
                at: t(0),
                kind: FaultKind::RailDown { duration: d(100) },
            })
            .with(FaultSpec {
                rail: RailId(1),
                at: t(50),
                kind: FaultKind::RailDown { duration: d(100) },
            });
        assert!(disjoint_rails.validate().is_ok());
        // Spike and degrade share the shaping slot: overlap rejected too.
        let shape_overlap = FaultSchedule::new(0)
            .with(FaultSpec {
                rail: RailId(0),
                at: t(0),
                kind: FaultKind::LatencySpike { extra: d(5), duration: d(100) },
            })
            .with(FaultSpec {
                rail: RailId(0),
                at: t(50),
                kind: FaultKind::BandwidthDegrade { factor: 0.5, duration: d(100) },
            });
        assert!(shape_overlap.validate().is_err());
        // A down window overlapping a loss window is allowed (distinct classes).
        let cross_class = FaultSchedule::new(0)
            .with(FaultSpec {
                rail: RailId(0),
                at: t(0),
                kind: FaultKind::RailDown { duration: d(100) },
            })
            .with(FaultSpec {
                rail: RailId(0),
                at: t(50),
                kind: FaultKind::TransientLoss { prob: 0.5, duration: d(100) },
            });
        assert!(cross_class.validate().is_ok());
    }
}
