//! # nm-faults — deterministic rail fault injection
//!
//! The paper's strategy (§II-B) trusts every rail to stay as fast as its
//! init-time ping-pong profile. This crate supplies the adversary: seedable,
//! reproducible fault schedules that the simulated transport replays so the
//! engine's health tracking and failover re-planning (in `nm-core`) can be
//! exercised — and benchmarked — without any nondeterminism.
//!
//! Eight fault models cover the failure classes a multirail node sees —
//! four availability/performance classes and four corruption classes:
//!
//! | model | effect |
//! |---|---|
//! | [`FaultKind::RailDown`] | submissions fail, in-flight chunks are lost |
//! | [`FaultKind::TransientLoss`] | each chunk independently lost with `prob` |
//! | [`FaultKind::LatencySpike`] | fixed extra one-way latency |
//! | [`FaultKind::BandwidthDegrade`] | modeled durations stretched by `1/factor` |
//! | [`FaultKind::PayloadCorrupt`] | chunk payload bytes flipped in flight with `prob` |
//! | [`FaultKind::HeaderCorrupt`] | chunk header bytes flipped in flight with `prob` |
//! | [`FaultKind::DuplicateChunk`] | chunk delivered twice with `prob` |
//! | [`FaultKind::ChunkReorderStorm`] | deliveries held, released in reverse order |
//!
//! A [`FaultSchedule`] validates its windows and compiles to time-sorted
//! [`Transition`]s; a [`FaultState`] applies them as virtual time advances.
//! Everything probabilistic draws from one RNG seeded by the schedule, so
//! `(workload, schedule)` fully determines a chaos run. An **empty**
//! schedule is guaranteed inert: the injecting driver adds no events,
//! perturbs no RNG stream and rounds no duration, which is what lets the
//! fault-free chaos harness reproduce the golden figures bit-identically.

// No unsafe anywhere in this crate; keep it that way.
#![forbid(unsafe_code)]

pub mod cluster;
pub mod schedule;
pub mod state;

pub use cluster::{ClusterFaultSchedule, ClusterFaultSpec, ClusterFaultState, ClusterTransition};
pub use schedule::{Change, FaultKind, FaultSchedule, FaultSpec, Transition};
pub use state::FaultState;
