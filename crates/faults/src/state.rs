//! Runtime fault state: which windows are open right now.
//!
//! A [`FaultState`] is the mutable counterpart of a compiled
//! [`Transition`](crate::schedule::Transition) list. The injecting driver
//! applies transitions as virtual time reaches them and consults the state
//! on every submission. All randomness (transient-loss draws) comes from
//! one seeded RNG, so a schedule replays identically run after run.

use crate::schedule::{Change, Transition};
use nm_model::SimDuration;
use nm_sim::RailId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Open fault windows per rail, plus the deterministic loss RNG.
#[derive(Debug)]
pub struct FaultState {
    down: Vec<bool>,
    loss: Vec<Option<f64>>,
    shape: Vec<(f64, SimDuration)>,
    corrupt_payload: Vec<Option<f64>>,
    corrupt_header: Vec<Option<f64>>,
    dup: Vec<Option<f64>>,
    reorder: Vec<bool>,
    rng: StdRng,
}

impl FaultState {
    /// All-healthy state for `rails` rails, drawing from `seed`.
    pub fn new(rails: usize, seed: u64) -> Self {
        FaultState {
            down: vec![false; rails],
            loss: vec![None; rails],
            shape: vec![(1.0, SimDuration::ZERO); rails],
            corrupt_payload: vec![None; rails],
            corrupt_header: vec![None; rails],
            dup: vec![None; rails],
            reorder: vec![false; rails],
            rng: StdRng::seed_from_u64(seed ^ 0x6e6d_666c_7400),
        }
    }

    /// Applies one transition.
    pub fn apply(&mut self, t: &Transition) {
        let r = t.rail.index();
        match t.change {
            Change::DownBegin => self.down[r] = true,
            Change::DownEnd => self.down[r] = false,
            Change::LossBegin { prob } => self.loss[r] = Some(prob),
            Change::LossEnd => self.loss[r] = None,
            Change::ShapeBegin { time_scale, extra_latency } => {
                self.shape[r] = (time_scale, extra_latency)
            }
            Change::ShapeEnd => self.shape[r] = (1.0, SimDuration::ZERO),
            Change::CorruptBegin { prob, header: true } => self.corrupt_header[r] = Some(prob),
            Change::CorruptBegin { prob, header: false } => self.corrupt_payload[r] = Some(prob),
            Change::CorruptEnd { header: true } => self.corrupt_header[r] = None,
            Change::CorruptEnd { header: false } => self.corrupt_payload[r] = None,
            Change::DupBegin { prob } => self.dup[r] = Some(prob),
            Change::DupEnd => self.dup[r] = None,
            Change::ReorderBegin => self.reorder[r] = true,
            Change::ReorderEnd => self.reorder[r] = false,
        }
    }

    /// True while the rail is hard-down.
    pub fn is_down(&self, rail: RailId) -> bool {
        self.down[rail.index()]
    }

    /// Draws the loss lottery for one submission. Consumes randomness only
    /// while a loss window is open, so fault-free rails never perturb the
    /// RNG stream.
    pub fn should_drop(&mut self, rail: RailId) -> bool {
        match self.loss[rail.index()] {
            None => false,
            Some(prob) => self.rng.random_range(0.0..1.0) < prob,
        }
    }

    /// Current `(time_scale, extra_latency)` shaping of a rail
    /// (`(1.0, ZERO)` = nominal).
    pub fn shaping(&self, rail: RailId) -> (f64, SimDuration) {
        self.shape[rail.index()]
    }

    /// Draws the payload-corruption lottery for one submission. Like
    /// [`Self::should_drop`], consumes randomness only while a window is
    /// open.
    pub fn should_corrupt_payload(&mut self, rail: RailId) -> bool {
        match self.corrupt_payload[rail.index()] {
            None => false,
            Some(prob) => self.rng.random_range(0.0..1.0) < prob,
        }
    }

    /// Draws the header-corruption lottery for one submission.
    pub fn should_corrupt_header(&mut self, rail: RailId) -> bool {
        match self.corrupt_header[rail.index()] {
            None => false,
            Some(prob) => self.rng.random_range(0.0..1.0) < prob,
        }
    }

    /// Draws the duplication lottery for one delivery.
    pub fn should_duplicate(&mut self, rail: RailId) -> bool {
        match self.dup[rail.index()] {
            None => false,
            Some(prob) => self.rng.random_range(0.0..1.0) < prob,
        }
    }

    /// True while a reorder storm holds the rail's deliveries.
    pub fn reorder_active(&self, rail: RailId) -> bool {
        self.reorder[rail.index()]
    }

    /// True when any window is open on any rail.
    pub fn any_active(&self) -> bool {
        self.down.iter().any(|&d| d)
            || self.loss.iter().any(|l| l.is_some())
            || self.shape.iter().any(|&s| s != (1.0, SimDuration::ZERO))
            || self.corrupt_payload.iter().any(|c| c.is_some())
            || self.corrupt_header.iter().any(|c| c.is_some())
            || self.dup.iter().any(|d| d.is_some())
            || self.reorder.iter().any(|&r| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_model::SimTime;

    fn tr(rail: usize, change: Change) -> Transition {
        Transition { at: SimTime::ZERO, rail: RailId(rail), change }
    }

    #[test]
    fn windows_open_and_close() {
        let mut s = FaultState::new(2, 7);
        assert!(!s.any_active());
        s.apply(&tr(0, Change::DownBegin));
        assert!(s.is_down(RailId(0)));
        assert!(!s.is_down(RailId(1)));
        assert!(s.any_active());
        s.apply(&tr(0, Change::DownEnd));
        assert!(!s.any_active());

        s.apply(&tr(
            1,
            Change::ShapeBegin { time_scale: 4.0, extra_latency: SimDuration::from_micros(10) },
        ));
        assert_eq!(s.shaping(RailId(1)), (4.0, SimDuration::from_micros(10)));
        s.apply(&tr(1, Change::ShapeEnd));
        assert_eq!(s.shaping(RailId(1)), (1.0, SimDuration::ZERO));
    }

    #[test]
    fn loss_draws_are_deterministic_per_seed() {
        let draw = |seed: u64| {
            let mut s = FaultState::new(1, seed);
            s.apply(&tr(0, Change::LossBegin { prob: 0.5 }));
            (0..64).map(|_| s.should_drop(RailId(0))).collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3), "same seed, same lottery");
        assert_ne!(draw(3), draw(4), "different seeds should diverge");
    }

    #[test]
    fn extreme_probabilities_behave() {
        let mut s = FaultState::new(1, 0);
        s.apply(&tr(0, Change::LossBegin { prob: 0.0 }));
        assert!((0..32).all(|_| !s.should_drop(RailId(0))));
        s.apply(&tr(0, Change::LossBegin { prob: 1.0 }));
        assert!((0..32).all(|_| s.should_drop(RailId(0))));
    }

    #[test]
    fn corruption_windows_open_and_close_independently() {
        let mut s = FaultState::new(2, 11);
        s.apply(&tr(0, Change::CorruptBegin { prob: 1.0, header: false }));
        s.apply(&tr(0, Change::DupBegin { prob: 1.0 }));
        s.apply(&tr(1, Change::ReorderBegin));
        assert!(s.any_active());
        assert!(s.should_corrupt_payload(RailId(0)));
        assert!(!s.should_corrupt_header(RailId(0)), "header slot stays closed");
        assert!(s.should_duplicate(RailId(0)));
        assert!(!s.should_duplicate(RailId(1)));
        assert!(s.reorder_active(RailId(1)));
        assert!(!s.reorder_active(RailId(0)));
        s.apply(&tr(0, Change::CorruptEnd { header: false }));
        s.apply(&tr(0, Change::DupEnd));
        s.apply(&tr(1, Change::ReorderEnd));
        assert!(!s.any_active());
        assert!(!s.should_corrupt_payload(RailId(0)));

        // Header slot is separate from payload.
        s.apply(&tr(0, Change::CorruptBegin { prob: 1.0, header: true }));
        assert!(s.should_corrupt_header(RailId(0)));
        assert!(!s.should_corrupt_payload(RailId(0)));
        s.apply(&tr(0, Change::CorruptEnd { header: true }));
        assert!(!s.any_active());
    }

    #[test]
    fn closed_corruption_windows_never_draw() {
        // 100 closed-window consultations must not perturb the RNG stream.
        let mut a = FaultState::new(1, 9);
        for _ in 0..100 {
            assert!(!a.should_corrupt_payload(RailId(0)));
            assert!(!a.should_corrupt_header(RailId(0)));
            assert!(!a.should_duplicate(RailId(0)));
        }
        let mut b = FaultState::new(1, 9);
        a.apply(&tr(0, Change::LossBegin { prob: 0.5 }));
        b.apply(&tr(0, Change::LossBegin { prob: 0.5 }));
        assert_eq!(a.should_drop(RailId(0)), b.should_drop(RailId(0)));
    }

    #[test]
    fn closed_loss_window_never_draws() {
        let mut a = FaultState::new(1, 9);
        for _ in 0..100 {
            assert!(!a.should_drop(RailId(0)));
        }
        // The RNG stream was untouched: first real draw matches a fresh state.
        let mut b = FaultState::new(1, 9);
        a.apply(&tr(0, Change::LossBegin { prob: 0.5 }));
        b.apply(&tr(0, Change::LossBegin { prob: 0.5 }));
        assert_eq!(a.should_drop(RailId(0)), b.should_drop(RailId(0)));
    }
}
