//! The calendar queue must reproduce the legacy heap's event order on the
//! fig8 workload — the figure harnesses are required to be bit-identical
//! across the queue swap.
//!
//! This test replays fig8's bandwidth-ladder schedule (the paper testbed's
//! two rails, message sizes 1 KiB → 4 MiB, chunk completions + idle
//! notifications with occasional retractions) against [`EventQueue`] and
//! [`LegacyEventQueue`] in lockstep and asserts the popped `(time, event)`
//! sequences are identical. The committed golden figure outputs (see
//! `crates/bench/tests/figure_golden.rs`) then pin the end-to-end result.

use nm_model::{SimDuration, SimTime};
use nm_sim::{EventQueue, LegacyEventQueue};

/// Events of the mimic simulation, tagged for exact comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    ChunkDone { rail: usize, msg: u64 },
    RailIdle { rail: usize },
}

/// Affine per-rail chunk duration from the paper testbed's sampled shape:
/// `lat + bytes / bw` (Myri-10G-like and QsNetII-like).
fn chunk_ns(rail: usize, bytes: u64) -> u64 {
    let (lat_ns, bytes_per_us) = if rail == 0 { (2_300, 1_170) } else { (1_400, 840) };
    lat_ns + bytes * 1_000 / bytes_per_us
}

#[test]
fn calendar_replays_fig8_trace_identically() {
    let mut cal = EventQueue::new();
    let mut leg = LegacyEventQueue::new();

    // fig8's ladder: sizes 1 KiB .. 4 MiB, split 60/40 over the two rails.
    let sizes: Vec<u64> = (10..=22).map(|p| 1u64 << p).collect();
    let mut now = SimTime::ZERO;
    let mut popped = 0usize;

    for (msg, &size) in sizes.iter().enumerate() {
        // Submit both chunks at the current instant; each rail also gets an
        // idle notification scheduled right after its chunk completes.
        let mut idle_ids = Vec::new();
        for rail in 0..2 {
            let bytes = if rail == 0 { size * 6 / 10 } else { size - size * 6 / 10 };
            let done_at = now + SimDuration::from_nanos(chunk_ns(rail, bytes));
            cal.push(done_at, Ev::ChunkDone { rail, msg: msg as u64 });
            leg.push(done_at, Ev::ChunkDone { rail, msg: msg as u64 });
            let idle_at = done_at + SimDuration::from_nanos(1);
            idle_ids.push((
                cal.push(idle_at, Ev::RailIdle { rail }),
                leg.push(idle_at, Ev::RailIdle { rail }),
            ));
        }
        // The engine retracts rail 1's idle notification every other
        // message (re-busied by the next submission) — the cancellation
        // pattern the tombstone set used to absorb.
        if msg % 2 == 0 {
            let (cid, lid) = idle_ids[1];
            cal.cancel(cid);
            leg.cancel(lid);
        }

        // Drain this message's events in lockstep before the next rung.
        loop {
            assert_eq!(cal.peek_time(), leg.peek_time());
            let (a, b) = (cal.pop(), leg.pop());
            assert_eq!(a, b, "divergence after {popped} pops");
            match a {
                Some((at, _)) => {
                    assert!(at >= now, "time went backwards");
                    now = at;
                    popped += 1;
                }
                None => break,
            }
        }
        assert!(cal.is_empty() && leg.is_empty());
    }

    // 13 rungs × (2 chunk completions + 1 or 2 live idles).
    assert_eq!(popped, 13 * 3 + 6);
}
