//! The discrete-event simulator.
//!
//! ## Transfer timelines
//!
//! **Eager (PIO)** — the sending core *and* the sending NIC are jointly
//! occupied for the copy duration `pio.copy_time(size)` (the host CPU
//! streams the payload into NIC memory, so injection bandwidth is CPU
//! bandwidth — the effect behind the paper's Fig 3/4). The payload then
//! reaches the destination where the receiving NIC *and* the receiving core
//! absorb a symmetric copy window; delivery lands exactly
//! `LinkModel::eager.time(size)` after injection start when nothing
//! contends. Two eager sends issued from one core serialize on the core;
//! offloaded sends (`offload_delay > 0`) start later but on another core.
//!
//! **Rendezvous** — the sender posts an RTS (small core window, then a
//! control-latency flight), the receiver answers CTS immediately, and the
//! DMA phase occupies both NICs — but no core — for `rdv.time(size)`.
//! Uncontended end-to-end equals
//! `LinkModel::one_way_us_in_mode(size, Rendezvous)`.
//!
//! ## Event delivery
//!
//! The engine calls [`Simulator::step`] in a loop. Each step advances
//! virtual time to the next internal event and returns the public
//! [`SimEvent`]s it caused: deliveries, send completions, RTS arrivals and
//! *edge-triggered* NIC-idle / core-idle notifications (stale notifications
//! are suppressed with generation counters). This mirrors NewMadeleine's
//! scheduler being "activated when a NIC becomes idle in order to feed it".

use crate::event::EventQueue;
use crate::ids::{CoreId, NicDir, NicKey, NodeId, RailId, TransferId};
use crate::resource::SerialResource;
use crate::topology::ClusterSpec;
use crate::trace::{Trace, TraceRecord};
use crate::transfer::{Transfer, TransferState};
use nm_model::{LinkModel, SimDuration, SimTime, TransferMode};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

/// A send order from the engine.
#[derive(Debug, Clone)]
pub struct SendSpec {
    /// Source node.
    pub src: NodeId,
    /// Destination node (must differ from `src`).
    pub dst: NodeId,
    /// Rail to use.
    pub rail: RailId,
    /// Payload bytes.
    pub size: u64,
    /// Core performing the send-side work.
    pub send_core: CoreId,
    /// Core absorbing the receive copy (eager only).
    pub recv_core: CoreId,
    /// Force a protocol; `None` picks by the link's rendezvous threshold.
    pub mode: Option<TransferMode>,
    /// Extra delay before the send-side work may start — the offload cost
    /// T_O paid when the chunk was handed to another core (3 µs, or 6 µs
    /// with a preemption signal; paper §III-D).
    pub offload_delay: SimDuration,
}

impl SendSpec {
    /// A plain send from node `src` core 0 to node `dst` core 0.
    pub fn simple(src: NodeId, dst: NodeId, rail: RailId, size: u64) -> Self {
        SendSpec {
            src,
            dst,
            rail,
            size,
            send_core: CoreId(0),
            recv_core: CoreId(0),
            mode: None,
            offload_delay: SimDuration::ZERO,
        }
    }

    /// Sets the sending core.
    pub fn on_core(mut self, core: CoreId) -> Self {
        self.send_core = core;
        self
    }

    /// Sets the receive-copy core.
    pub fn recv_on_core(mut self, core: CoreId) -> Self {
        self.recv_core = core;
        self
    }

    /// Forces the protocol.
    pub fn with_mode(mut self, mode: TransferMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Adds an offload delay (T_O).
    pub fn with_offload_delay(mut self, d: SimDuration) -> Self {
        self.offload_delay = d;
        self
    }
}

/// Public events produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// A rendezvous request reached the destination — the moment the paper's
    /// strategy is re-invoked ("when a rendezvous request has just been
    /// received", §III-B).
    RtsArrived {
        /// The transfer.
        transfer: TransferId,
        /// Arrival instant.
        at: SimTime,
    },
    /// Send-side completion: injection finished (eager) or DMA done (rdv).
    SendDone {
        /// The transfer.
        transfer: TransferId,
        /// Completion instant.
        at: SimTime,
    },
    /// Payload fully available at the destination.
    Delivered {
        /// The transfer.
        transfer: TransferId,
        /// Delivery instant.
        at: SimTime,
    },
    /// A NIC transitioned busy → idle.
    NicIdle {
        /// Owning node.
        node: NodeId,
        /// Rail.
        rail: RailId,
        /// Transition instant.
        at: SimTime,
    },
    /// A core transitioned busy → idle.
    CoreIdle {
        /// Owning node.
        node: NodeId,
        /// Core.
        core: CoreId,
        /// Transition instant.
        at: SimTime,
    },
    /// A wakeup requested with [`Simulator::schedule_wakeup`] fired.
    Wakeup {
        /// Caller-chosen token.
        token: u64,
        /// Firing instant.
        at: SimTime,
    },
}

/// A serially-occupied device, addressable for window bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum ResKey {
    NicTx(NodeId, RailId),
    NicRx(NodeId, RailId),
    Core(NodeId, CoreId),
    /// The rail's switch backplane (only exists under a
    /// [`crate::topology::SwitchSpec`]).
    Switch(RailId),
}

/// One reservation made on behalf of a transfer: enough to undo it.
#[derive(Debug, Clone, Copy)]
struct Window {
    res: ResKey,
    begin: SimTime,
    end: SimTime,
    /// The resource's busy-until before this reservation was made.
    prev: SimTime,
}

/// Internal calendar payloads.
#[derive(Debug, Clone)]
enum Ev {
    InjectEnd(TransferId),
    RecvEnd(TransferId),
    RtsArrive(TransferId),
    DmaEnd(TransferId),
    NicIdleCheck(NicKey, NicDir, u64),
    CoreIdleCheck(NodeId, CoreId, u64),
    Wakeup(u64),
}

/// The simulator.
///
/// ```
/// use nm_sim::{NodeId, RailId, SendSpec, Simulator};
///
/// let mut sim = Simulator::paper_testbed();
/// let id = sim.submit(SendSpec::simple(NodeId(0), NodeId(1), RailId(0), 4096));
/// let delivered = sim.run_until_delivered(id);
/// // An uncontended transfer lands exactly at the link model's one-way time.
/// let want = nm_model::builtin::myri_10g().one_way_us(4096).get();
/// assert!((delivered.as_micros_f64() - want).abs() < 0.01);
/// ```
pub struct Simulator {
    spec: ClusterSpec,
    now: SimTime,
    calendar: EventQueue<Ev>,
    outbox: VecDeque<SimEvent>,
    transfers: Vec<Transfer>,
    /// Transmit side of `nics[node][rail]` (NICs are full duplex).
    nic_tx: Vec<Vec<SerialResource>>,
    /// Receive side of `nics[node][rail]`.
    nic_rx: Vec<Vec<SerialResource>>,
    /// `cores[node][core]`.
    cores: Vec<Vec<SerialResource>>,
    /// Per-rail switch backplane, `switch[rail]`; empty when the spec has
    /// no switch (ideal point-to-point cabling, the paper's world).
    switch: Vec<SerialResource>,
    /// Reserved windows per transfer, parallel to `transfers` — what
    /// [`Self::try_cancel_all`] retracts.
    windows: Vec<Vec<Window>>,
    /// Per-rail fault shaping `(time_scale, extra_latency)` applied to
    /// subsequently submitted transfers; `(1.0, ZERO)` bypasses the
    /// arithmetic entirely.
    rail_fault: Vec<(f64, SimDuration)>,
    /// Per-NIC-port fault shaping `nic_fault[node][rail]`, composed with
    /// the rail-wide slot: scales multiply, extra latencies add. Nominal
    /// entries compose exactly (`x * 1.0 == x`, `d + ZERO == d`), so a
    /// cluster that never faults a port stays bit-identical.
    nic_fault: Vec<Vec<(f64, SimDuration)>>,
    trace: Trace,
    jitter_frac: f64,
    rng: StdRng,
}

impl Simulator {
    /// Builds a simulator for `spec`. Panics on an invalid spec.
    pub fn new(spec: ClusterSpec) -> Self {
        spec.validate().expect("invalid cluster spec");
        let mk_nics = |spec: &ClusterSpec| -> Vec<Vec<SerialResource>> {
            spec.nodes
                .iter()
                .map(|_| (0..spec.rail_count()).map(|_| SerialResource::new()).collect())
                .collect()
        };
        let nic_tx = mk_nics(&spec);
        let nic_rx = mk_nics(&spec);
        let cores = spec
            .nodes
            .iter()
            .map(|n| (0..n.cores).map(|_| SerialResource::new()).collect())
            .collect();
        let switch = if spec.switch.is_some() {
            (0..spec.rail_count()).map(|_| SerialResource::new()).collect()
        } else {
            Vec::new()
        };
        let rail_fault = vec![(1.0, SimDuration::ZERO); spec.rail_count()];
        let nic_fault = vec![vec![(1.0, SimDuration::ZERO); spec.rail_count()]; spec.nodes.len()];
        Simulator {
            spec,
            now: SimTime::ZERO,
            calendar: EventQueue::new(),
            outbox: VecDeque::new(),
            transfers: Vec::new(),
            nic_tx,
            nic_rx,
            cores,
            switch,
            windows: Vec::new(),
            rail_fault,
            nic_fault,
            trace: Trace::disabled(),
            jitter_frac: 0.0,
            rng: StdRng::seed_from_u64(0x6e6d_7369_6d00),
        }
    }

    /// The paper's two-node, two-rail, four-core testbed.
    pub fn paper_testbed() -> Self {
        Simulator::new(ClusterSpec::paper_testbed())
    }

    /// Enables multiplicative duration noise: every modeled duration is
    /// scaled by a factor drawn uniformly from `[1-frac, 1+frac]`.
    /// Deterministic for a given seed.
    pub fn with_jitter(mut self, frac: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&frac), "jitter fraction must be in [0,1)");
        self.jitter_frac = frac;
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// Turns on event tracing (see [`Trace`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = Trace::enabled();
        self
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The cluster layout.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The performance model of a rail.
    pub fn link(&self, rail: RailId) -> &LinkModel {
        &self.spec.rails[rail.index()]
    }

    /// Read access to a transfer's record.
    pub fn transfer(&self, id: TransferId) -> &Transfer {
        &self.transfers[id.0 as usize]
    }

    /// When the *transmit* side of the NIC `(node, rail)` drains its
    /// reservations — the quantity the engine's scheduler watches.
    pub fn nic_busy_until(&self, node: NodeId, rail: RailId) -> SimTime {
        self.nic_tx[node.index()][rail.index()].busy_until()
    }

    /// When the *receive* side of the NIC `(node, rail)` drains.
    pub fn nic_rx_busy_until(&self, node: NodeId, rail: RailId) -> SimTime {
        self.nic_rx[node.index()][rail.index()].busy_until()
    }

    /// When a core drains its current reservations.
    pub fn core_busy_until(&self, node: NodeId, core: CoreId) -> SimTime {
        self.cores[node.index()][core.index()].busy_until()
    }

    /// When the switch backplane of `rail` drains. [`SimTime::ZERO`] when
    /// the cluster has no switch.
    pub fn switch_busy_until(&self, rail: RailId) -> SimTime {
        self.switch.get(rail.index()).map_or(SimTime::ZERO, SerialResource::busy_until)
    }

    /// Cumulative time the switch backplane of `rail` has been reserved —
    /// each transfer contributes exactly one transit window, which the
    /// topology property tests pin (no double charging).
    /// [`SimDuration::ZERO`] when the cluster has no switch.
    pub fn switch_busy_total(&self, rail: RailId) -> SimDuration {
        self.switch.get(rail.index()).map_or(SimDuration::ZERO, SerialResource::busy_total)
    }

    /// Cores of `node` idle at the current instant.
    pub fn idle_cores(&self, node: NodeId) -> Vec<CoreId> {
        self.cores[node.index()]
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_idle(self.now))
            .map(|(i, _)| CoreId(i))
            .collect()
    }

    /// Rails whose NIC on `node` is transmit-idle at the current instant.
    pub fn idle_rails(&self, node: NodeId) -> Vec<RailId> {
        self.nic_tx[node.index()]
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_idle(self.now))
            .map(|(i, _)| RailId(i))
            .collect()
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    fn jitter(&mut self, d: SimDuration) -> SimDuration {
        if self.jitter_frac == 0.0 {
            return d;
        }
        let f: f64 = self.rng.random_range(-self.jitter_frac..=self.jitter_frac);
        d.mul_f64(1.0 + f)
    }

    /// Requests a [`SimEvent::Wakeup`] at `at` (used by workload drivers).
    pub fn schedule_wakeup(&mut self, at: SimTime, token: u64) {
        assert!(at >= self.now, "cannot schedule a wakeup in the past");
        self.calendar.push(at, Ev::Wakeup(token));
    }

    /// Sets fault shaping on a rail: modeled durations of transfers
    /// submitted *from now on* are stretched by `time_scale` and each
    /// one-way flight pays `extra_latency` on top. `(1.0, ZERO)` is
    /// nominal — and with nominal shaping the computation is skipped
    /// outright, so an unfaulted simulator stays bit-identical to one
    /// that never heard of faults.
    pub fn set_rail_fault(&mut self, rail: RailId, time_scale: f64, extra_latency: SimDuration) {
        assert!(
            time_scale.is_finite() && time_scale > 0.0,
            "fault time scale must be positive, got {time_scale}"
        );
        self.rail_fault[rail.index()] = (time_scale, extra_latency);
    }

    /// Restores nominal shaping on a rail.
    pub fn clear_rail_fault(&mut self, rail: RailId) {
        self.rail_fault[rail.index()] = (1.0, SimDuration::ZERO);
    }

    /// Sets fault shaping on one NIC port `(node, rail)`: transfers
    /// submitted from now on that *touch* the port (as sender or receiver)
    /// are stretched by `time_scale` and pay `extra_latency` per one-way
    /// flight, composed with the rail-wide slot and the other endpoint's
    /// port (scales multiply, latencies add).
    pub fn set_nic_fault(
        &mut self,
        node: NodeId,
        rail: RailId,
        time_scale: f64,
        extra_latency: SimDuration,
    ) {
        assert!(
            time_scale.is_finite() && time_scale > 0.0,
            "fault time scale must be positive, got {time_scale}"
        );
        self.nic_fault[node.index()][rail.index()] = (time_scale, extra_latency);
    }

    /// Restores nominal shaping on one NIC port.
    pub fn clear_nic_fault(&mut self, node: NodeId, rail: RailId) {
        self.nic_fault[node.index()][rail.index()] = (1.0, SimDuration::ZERO);
    }

    /// Effective `(time_scale, extra_latency)` for a transfer: the rail
    /// slot composed with both endpoints' port slots. All-nominal inputs
    /// compose to exactly `(1.0, ZERO)` — IEEE multiplication by 1.0 and
    /// adding a zero duration are exact — so the fast-path guards in the
    /// submit arithmetic still skip faulting entirely.
    fn fault_shaping(&self, src: NodeId, dst: NodeId, rail: RailId) -> (f64, SimDuration) {
        let (rail_scale, rail_extra) = self.rail_fault[rail.index()];
        let (src_scale, src_extra) = self.nic_fault[src.index()][rail.index()];
        let (dst_scale, dst_extra) = self.nic_fault[dst.index()][rail.index()];
        (rail_scale * src_scale * dst_scale, rail_extra + src_extra + dst_extra)
    }

    /// Submits a transfer; send-side work starts as soon as the required
    /// resources are free (and not before `now + offload_delay`).
    // nm-analyzer: allow(unbounded-growth) -- per-run ledgers dropped with the simulator:
    // population equals submitted transfers and their reserved windows
    pub fn submit(&mut self, spec: SendSpec) -> TransferId {
        self.validate_spec(&spec);
        let link = &self.spec.rails[spec.rail.index()];
        let mode = spec.mode.unwrap_or_else(|| link.mode_for(spec.size));
        let id = TransferId(self.transfers.len() as u64);
        self.transfers.push(Transfer {
            id,
            src: spec.src,
            dst: spec.dst,
            rail: spec.rail,
            size: spec.size,
            mode,
            send_core: spec.send_core,
            recv_core: spec.recv_core,
            state: TransferState::Pending,
            submitted_at: self.now,
            started_at: None,
            send_done_at: None,
            delivered_at: None,
        });
        self.windows.push(Vec::new());
        match mode {
            TransferMode::Eager => self.submit_eager(id, &spec),
            TransferMode::Rendezvous => self.submit_rdv(id, &spec),
        }
        id
    }

    fn validate_spec(&self, spec: &SendSpec) {
        assert!(spec.src.index() < self.spec.nodes.len(), "bad src node {:?}", spec.src);
        assert!(spec.dst.index() < self.spec.nodes.len(), "bad dst node {:?}", spec.dst);
        assert_ne!(spec.src, spec.dst, "loopback transfers are not modeled");
        assert!(spec.rail.index() < self.spec.rail_count(), "bad rail {:?}", spec.rail);
        assert!(
            self.spec.has_nic(spec.src.index(), spec.rail.index()),
            "node {:?} has no NIC on rail {:?}",
            spec.src,
            spec.rail
        );
        assert!(
            self.spec.has_nic(spec.dst.index(), spec.rail.index()),
            "node {:?} has no NIC on rail {:?}",
            spec.dst,
            spec.rail
        );
        assert!(
            spec.send_core.index() < self.spec.nodes[spec.src.index()].cores,
            "bad send core {:?}",
            spec.send_core
        );
        assert!(
            spec.recv_core.index() < self.spec.nodes[spec.dst.index()].cores,
            "bad recv core {:?}",
            spec.recv_core
        );
        assert!(spec.size > 0, "zero-byte transfers are not modeled");
    }

    fn submit_eager(&mut self, id: TransferId, spec: &SendSpec) {
        let link = &self.spec.rails[spec.rail.index()];
        let copy_raw = link.pio.copy_time(spec.size);
        let one_way_raw = link.eager.time(spec.size);
        let (fault_scale, fault_extra) = self.fault_shaping(spec.src, spec.dst, spec.rail);
        let mut copy = self.jitter(copy_raw);
        let mut one_way = self.jitter(one_way_raw);
        if fault_scale != 1.0 {
            copy = copy.mul_f64(fault_scale);
            one_way = one_way.mul_f64(fault_scale);
        }
        if fault_extra > SimDuration::ZERO {
            one_way += fault_extra;
        }
        // One-way time, floored to exceed the copy so the wire gap is >= 0.
        let one_way = one_way.max(copy + SimDuration::from_nanos(50));

        let earliest = self.now + spec.offload_delay;
        let core = &self.cores[spec.src.index()][spec.send_core.index()];
        let nic = &self.nic_tx[spec.src.index()][spec.rail.index()];
        let start = earliest.max(core.free_at(earliest)).max(nic.free_at(earliest));

        let (s, inject_end) =
            self.reserve_tracked(id, ResKey::Core(spec.src, spec.send_core), start, copy);
        debug_assert_eq!(s, start);
        let (_, nic_end) =
            self.reserve_tracked(id, ResKey::NicTx(spec.src, spec.rail), start, copy);
        debug_assert_eq!(nic_end, inject_end);

        self.trace.push(TraceRecord::CoreBusy {
            node: spec.src,
            core: spec.send_core,
            from: start,
            to: inject_end,
            transfer: id,
        });
        self.trace.push(TraceRecord::NicBusy {
            node: spec.src,
            rail: spec.rail,
            dir: NicDir::Tx,
            from: start,
            to: inject_end,
            transfer: id,
        });

        let t = &mut self.transfers[id.0 as usize];
        t.started_at = Some(start);
        t.state = TransferState::InFlight;

        self.calendar.push(inject_end, Ev::InjectEnd(id));

        // The receive window (length `copy`) begins one wire-gap after
        // injection start, so uncontended delivery = start + one_way. Like
        // every other window it is reserved *at submit time*: each NIC and
        // core serves its reservations in submission order (NIC queues are
        // FIFO), which keeps submit-time pre-reservations (rendezvous) and
        // arrival-time work mutually consistent.
        let wire_arrive = start + (one_way - copy);
        // The payload crosses the switch backplane (when one is modeled)
        // between injection and receive: one transit window per transfer,
        // reserved from injection start. A backplane faster than the link
        // finishes inside the wire gap and delays nothing; a contended one
        // pushes the arrival out.
        let switch_clear = match self.switch_transit(spec.size) {
            Some(transit) => {
                let sw = &self.switch[spec.rail.index()];
                let sw_start = start.max(sw.free_at(start));
                let (_, sw_end) =
                    self.reserve_tracked(id, ResKey::Switch(spec.rail), sw_start, transit);
                sw_end
            }
            None => wire_arrive,
        };
        let arrive = wire_arrive.max(switch_clear);
        let rx_nic = &self.nic_rx[spec.dst.index()][spec.rail.index()];
        let rx_core = &self.cores[spec.dst.index()][spec.recv_core.index()];
        let recv_start = arrive.max(rx_nic.free_at(arrive)).max(rx_core.free_at(arrive));
        let (_, recv_end) =
            self.reserve_tracked(id, ResKey::NicRx(spec.dst, spec.rail), recv_start, copy);
        self.reserve_tracked(id, ResKey::Core(spec.dst, spec.recv_core), recv_start, copy);
        self.trace.push(TraceRecord::NicBusy {
            node: spec.dst,
            rail: spec.rail,
            dir: NicDir::Rx,
            from: recv_start,
            to: recv_end,
            transfer: id,
        });
        self.trace.push(TraceRecord::CoreBusy {
            node: spec.dst,
            core: spec.recv_core,
            from: recv_start,
            to: recv_end,
            transfer: id,
        });
        self.calendar.push(recv_end, Ev::RecvEnd(id));
        let rx_nic_gen = self.nic_rx[spec.dst.index()][spec.rail.index()].generation();
        self.calendar.push(
            recv_end,
            Ev::NicIdleCheck(NicKey { node: spec.dst, rail: spec.rail }, NicDir::Rx, rx_nic_gen),
        );
        let rx_core_gen = self.cores[spec.dst.index()][spec.recv_core.index()].generation();
        self.calendar.push(recv_end, Ev::CoreIdleCheck(spec.dst, spec.recv_core, rx_core_gen));

        self.schedule_idle_checks_for_send(spec, inject_end);
    }

    fn submit_rdv(&mut self, id: TransferId, spec: &SendSpec) {
        let link = &self.spec.rails[spec.rail.index()];
        let (setup_us, ctrl_us) = (link.rdv_setup_us, link.ctrl_latency_us);
        let rdv_raw = link.rdv.time(spec.size);
        let (fault_scale, fault_extra) = self.fault_shaping(spec.src, spec.dst, spec.rail);
        let setup = self.jitter(SimDuration::from_micros_f64(setup_us));
        let mut rts_flight = self.jitter(SimDuration::from_micros_f64(ctrl_us));
        let mut cts_flight = self.jitter(SimDuration::from_micros_f64(ctrl_us));
        let mut dma = self.jitter(rdv_raw);
        if fault_scale != 1.0 {
            dma = dma.mul_f64(fault_scale);
        }
        if fault_extra > SimDuration::ZERO {
            rts_flight += fault_extra;
            cts_flight += fault_extra;
        }

        let earliest = self.now + spec.offload_delay;
        let core = &self.cores[spec.src.index()][spec.send_core.index()];
        let start = earliest.max(core.free_at(earliest));
        let (_, post_end) =
            self.reserve_tracked(id, ResKey::Core(spec.src, spec.send_core), start, setup);

        self.trace.push(TraceRecord::CoreBusy {
            node: spec.src,
            core: spec.send_core,
            from: start,
            to: post_end,
            transfer: id,
        });

        let t = &mut self.transfers[id.0 as usize];
        t.started_at = Some(start);

        let rts_arrive = post_end + rts_flight;
        self.calendar.push(rts_arrive, Ev::RtsArrive(id));

        // The DMA window is reserved on both NICs *now*: the engine that
        // queued this rendezvous knows the rail is claimed (its busy-until
        // predictions would otherwise see a spuriously idle NIC for the
        // whole handshake). The receiver is modeled as granting CTS
        // immediately, so the window placement is already known.
        let cts_arrive = rts_arrive + cts_flight;
        let transit = self.switch_transit(spec.size);
        let tx = &self.nic_tx[spec.src.index()][spec.rail.index()];
        let rx = &self.nic_rx[spec.dst.index()][spec.rail.index()];
        let mut dma_start = cts_arrive.max(tx.free_at(cts_arrive)).max(rx.free_at(cts_arrive));
        if transit.is_some() {
            dma_start = dma_start.max(self.switch[spec.rail.index()].free_at(dma_start));
        }
        let (_, dma_end) =
            self.reserve_tracked(id, ResKey::NicTx(spec.src, spec.rail), dma_start, dma);
        self.reserve_tracked(id, ResKey::NicRx(spec.dst, spec.rail), dma_start, dma);
        // The DMA stream crosses the backplane cut-through: its transit
        // window overlaps the DMA window and only outlives it on a slow
        // (oversubscribed) switch, in which case delivery waits for it.
        let finish = match transit {
            Some(t) => {
                let (_, sw_end) = self.reserve_tracked(id, ResKey::Switch(spec.rail), dma_start, t);
                dma_end.max(sw_end)
            }
            None => dma_end,
        };
        for (node, dir) in [(spec.src, NicDir::Tx), (spec.dst, NicDir::Rx)] {
            self.trace.push(TraceRecord::NicBusy {
                node,
                rail: spec.rail,
                dir,
                from: dma_start,
                to: dma_end,
                transfer: id,
            });
        }
        self.calendar.push(finish, Ev::DmaEnd(id));
        let tx_gen = self.nic_tx[spec.src.index()][spec.rail.index()].generation();
        self.calendar.push(
            dma_end,
            Ev::NicIdleCheck(NicKey { node: spec.src, rail: spec.rail }, NicDir::Tx, tx_gen),
        );
        let rx_gen = self.nic_rx[spec.dst.index()][spec.rail.index()].generation();
        self.calendar.push(
            dma_end,
            Ev::NicIdleCheck(NicKey { node: spec.dst, rail: spec.rail }, NicDir::Rx, rx_gen),
        );
        let core_gen = self.cores[spec.src.index()][spec.send_core.index()].generation();
        self.calendar.push(post_end, Ev::CoreIdleCheck(spec.src, spec.send_core, core_gen));
    }

    /// The backplane transit duration of a `size`-byte transfer, or `None`
    /// when no switch is modeled.
    fn switch_transit(&self, size: u64) -> Option<SimDuration> {
        self.spec.switch.as_ref().map(|sw| sw.transit(size))
    }

    fn resource(&self, res: ResKey) -> &SerialResource {
        match res {
            ResKey::NicTx(node, rail) => &self.nic_tx[node.index()][rail.index()],
            ResKey::NicRx(node, rail) => &self.nic_rx[node.index()][rail.index()],
            ResKey::Core(node, core) => &self.cores[node.index()][core.index()],
            ResKey::Switch(rail) => &self.switch[rail.index()],
        }
    }

    fn resource_mut(&mut self, res: ResKey) -> &mut SerialResource {
        match res {
            ResKey::NicTx(node, rail) => &mut self.nic_tx[node.index()][rail.index()],
            ResKey::NicRx(node, rail) => &mut self.nic_rx[node.index()][rail.index()],
            ResKey::Core(node, core) => &mut self.cores[node.index()][core.index()],
            ResKey::Switch(rail) => &mut self.switch[rail.index()],
        }
    }

    /// Reserves `res` on behalf of transfer `id`, remembering the window so
    /// it can later be retracted by [`Self::try_cancel_all`].
    // nm-analyzer: allow(unbounded-growth) -- one remembered window per live reservation,
    // retracted on cancel and dropped when the transfer completes
    fn reserve_tracked(
        &mut self,
        id: TransferId,
        res: ResKey,
        start: SimTime,
        duration: SimDuration,
    ) -> (SimTime, SimTime) {
        let r = self.resource_mut(res);
        let prev = r.busy_until();
        let (begin, end) = r.reserve(start, duration);
        self.windows[id.0 as usize].push(Window { res, begin, end, prev });
        (begin, end)
    }

    /// Atomically retracts a set of not-yet-started transfers, releasing
    /// every resource window they reserved. Succeeds (returns `true`) only
    /// when, for every transfer in the set: nothing has been served yet
    /// (every window begins strictly after `now`, no send-done/delivery)
    /// and the set's windows form the exact tail of each touched resource's
    /// reservation chain — i.e. no outside transfer queued behind them.
    /// On failure nothing is mutated.
    ///
    /// Cancelled transfers produce no further `Delivered`/`SendDone`
    /// events; their already-scheduled idle checks fire at the original
    /// window ends and report the (now earlier) idle transitions late,
    /// which is conservative but correct.
    pub fn try_cancel_all(&mut self, ids: &[TransferId]) -> bool {
        use std::collections::BTreeMap;
        if ids.is_empty() {
            return false;
        }
        for &id in ids {
            let t = &self.transfers[id.0 as usize];
            if t.state == TransferState::Cancelled
                || t.send_done_at.is_some()
                || t.delivered_at.is_some()
            {
                return false;
            }
            if self.windows[id.0 as usize].iter().any(|w| w.begin <= self.now) {
                return false;
            }
        }
        // Resource-ordered so retraction replays identically across runs.
        let mut groups: BTreeMap<ResKey, Vec<Window>> = BTreeMap::new();
        for &id in ids {
            for w in &self.windows[id.0 as usize] {
                groups.entry(w.res).or_default().push(*w);
            }
        }
        for (res, ws) in &mut groups {
            ws.sort_by_key(|w| w.end);
            // Walking tail-first, each window must end exactly where the
            // chain currently ends, and expose its predecessor's end as
            // the next expected tail. A duplicate id or an interleaved
            // outside reservation breaks the chain and rejects the set.
            let mut expect_end = self.resource(*res).busy_until();
            for w in ws.iter().rev() {
                if w.end != expect_end {
                    return false;
                }
                expect_end = w.prev;
            }
        }
        for (res, ws) in &groups {
            for w in ws.iter().rev() {
                self.resource_mut(*res).retract(w.prev, w.end - w.begin);
            }
        }
        for &id in ids {
            self.transfers[id.0 as usize].state = TransferState::Cancelled;
            self.windows[id.0 as usize].clear();
        }
        true
    }

    fn schedule_idle_checks_for_send(&mut self, spec: &SendSpec, end: SimTime) {
        let core_gen = self.cores[spec.src.index()][spec.send_core.index()].generation();
        self.calendar.push(end, Ev::CoreIdleCheck(spec.src, spec.send_core, core_gen));
        let nic_gen = self.nic_tx[spec.src.index()][spec.rail.index()].generation();
        self.calendar.push(
            end,
            Ev::NicIdleCheck(NicKey { node: spec.src, rail: spec.rail }, NicDir::Tx, nic_gen),
        );
    }

    /// Advances to the next internal event and returns the public events it
    /// produced. Returns an empty vec only when the calendar is exhausted.
    pub fn step(&mut self) -> Vec<SimEvent> {
        while self.outbox.is_empty() {
            let Some((at, ev)) = self.calendar.pop() else {
                return Vec::new();
            };
            debug_assert!(at >= self.now, "calendar went backwards");
            self.now = at;
            self.handle(ev);
        }
        self.outbox.drain(..).collect()
    }

    /// Runs the calendar dry, collecting every public event.
    pub fn run_until_idle(&mut self) -> Vec<SimEvent> {
        let mut all = Vec::new();
        loop {
            let batch = self.step();
            if batch.is_empty() {
                return all;
            }
            all.extend(batch);
        }
    }

    /// Runs until the given transfer is delivered; returns the delivery
    /// time. Panics if the calendar drains first.
    pub fn run_until_delivered(&mut self, id: TransferId) -> SimTime {
        loop {
            if let Some(at) = self.transfer(id).delivered_at {
                return at;
            }
            let batch = self.step();
            if batch.is_empty() && self.transfer(id).delivered_at.is_none() {
                panic!("calendar drained but {id} was never delivered");
            }
        }
    }

    // nm-analyzer: allow(unbounded-growth) -- outbox accumulates the events of one step and is
    // drained by the caller before the next
    fn handle(&mut self, ev: Ev) {
        // Events of a cancelled transfer are inert (the calendar entries
        // themselves are cheaper to ignore than to unschedule).
        if let Ev::InjectEnd(id) | Ev::RecvEnd(id) | Ev::RtsArrive(id) | Ev::DmaEnd(id) = ev {
            if self.transfers[id.0 as usize].state == TransferState::Cancelled {
                return;
            }
        }
        match ev {
            Ev::InjectEnd(id) => {
                let t = &mut self.transfers[id.0 as usize];
                t.send_done_at = Some(self.now);
                self.outbox.push_back(SimEvent::SendDone { transfer: id, at: self.now });
            }
            Ev::RecvEnd(id) => {
                let t = &mut self.transfers[id.0 as usize];
                t.delivered_at = Some(self.now);
                t.state = TransferState::Delivered;
                self.trace.push(TraceRecord::Delivered { transfer: id, at: self.now });
                self.outbox.push_back(SimEvent::Delivered { transfer: id, at: self.now });
            }
            Ev::RtsArrive(id) => {
                // The DMA window was placed at submit time (receiver grants
                // CTS immediately); this event only informs the engine.
                let t = &mut self.transfers[id.0 as usize];
                t.state = TransferState::InFlight;
                self.outbox.push_back(SimEvent::RtsArrived { transfer: id, at: self.now });
            }
            Ev::DmaEnd(id) => {
                let t = &mut self.transfers[id.0 as usize];
                t.send_done_at = Some(self.now);
                t.delivered_at = Some(self.now);
                t.state = TransferState::Delivered;
                self.trace.push(TraceRecord::Delivered { transfer: id, at: self.now });
                self.outbox.push_back(SimEvent::SendDone { transfer: id, at: self.now });
                self.outbox.push_back(SimEvent::Delivered { transfer: id, at: self.now });
            }
            Ev::NicIdleCheck(key, dir, gen) => {
                // Only transmit-idle transitions are surfaced: that is the
                // trigger feeding the engine's scheduler. (Receive-side
                // checks still run so generations stay bookkept.)
                let nic = match dir {
                    NicDir::Tx => &self.nic_tx[key.node.index()][key.rail.index()],
                    NicDir::Rx => &self.nic_rx[key.node.index()][key.rail.index()],
                };
                if dir == NicDir::Tx && nic.idle_event_is_current(gen) && nic.is_idle(self.now) {
                    self.outbox.push_back(SimEvent::NicIdle {
                        node: key.node,
                        rail: key.rail,
                        at: self.now,
                    });
                }
            }
            Ev::CoreIdleCheck(node, core, gen) => {
                let c = &self.cores[node.index()][core.index()];
                if c.idle_event_is_current(gen) && c.is_idle(self.now) {
                    self.outbox.push_back(SimEvent::CoreIdle { node, core, at: self.now });
                }
            }
            Ev::Wakeup(token) => {
                self.outbox.push_back(SimEvent::Wakeup { token, at: self.now });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_model::builtin;
    use nm_model::units::{KIB, MIB};

    fn sim() -> Simulator {
        Simulator::paper_testbed()
    }

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);
    const MYRI: RailId = RailId(0);
    const QUAD: RailId = RailId(1);

    #[test]
    fn uncontended_eager_matches_analytic_model() {
        for (rail, link) in [(MYRI, builtin::myri_10g()), (QUAD, builtin::qsnet2())] {
            for size in [4u64, 64, 1024, 16 * KIB, 64 * KIB] {
                let mut s = sim();
                let id = s.submit(SendSpec::simple(N0, N1, rail, size));
                let at = s.run_until_delivered(id);
                let want = link.one_way_us(size).get();
                let got = at.as_micros_f64();
                assert!(
                    (got - want).abs() < 0.01,
                    "{} size {size}: sim {got:.3}us vs model {want:.3}us",
                    link.name
                );
            }
        }
    }

    #[test]
    fn uncontended_rendezvous_matches_analytic_model() {
        for (rail, link) in [(MYRI, builtin::myri_10g()), (QUAD, builtin::qsnet2())] {
            for size in [256 * KIB, MIB, 4 * MIB] {
                let mut s = sim();
                let id = s.submit(SendSpec::simple(N0, N1, rail, size));
                assert_eq!(s.transfer(id).mode, TransferMode::Rendezvous);
                let at = s.run_until_delivered(id);
                let want = link.one_way_us(size).get();
                let got = at.as_micros_f64();
                assert!(
                    (got - want).abs() < 0.01,
                    "{} size {size}: sim {got:.3}us vs model {want:.3}us",
                    link.name
                );
            }
        }
    }

    #[test]
    fn eager_sends_from_one_core_serialize() {
        // Two 8 KiB eager sends on *different rails* but the same core: the
        // second injection cannot start before the first copy ends (Fig 4a).
        let size = 8 * KIB;
        let mut s = sim();
        let a = s.submit(SendSpec::simple(N0, N1, MYRI, size));
        let b = s.submit(SendSpec::simple(N0, N1, QUAD, size));
        s.run_until_idle();
        let a_start = s.transfer(a).started_at.unwrap();
        let b_start = s.transfer(b).started_at.unwrap();
        let a_inject_end = s.transfer(a).send_done_at.unwrap();
        assert_eq!(a_start, SimTime::ZERO);
        assert_eq!(b_start, a_inject_end, "second PIO copy must wait for the core");
    }

    #[test]
    fn eager_sends_on_two_cores_proceed_in_parallel() {
        // Same two sends, issued from different cores: both start at t=0
        // (Fig 4c without the offload delay).
        let size = 8 * KIB;
        let mut s = sim();
        let a = s.submit(SendSpec::simple(N0, N1, MYRI, size).recv_on_core(CoreId(0)));
        let b = s.submit(
            SendSpec::simple(N0, N1, QUAD, size).on_core(CoreId(1)).recv_on_core(CoreId(1)),
        );
        s.run_until_idle();
        assert_eq!(s.transfer(a).started_at.unwrap(), SimTime::ZERO);
        assert_eq!(s.transfer(b).started_at.unwrap(), SimTime::ZERO);
    }

    #[test]
    fn offload_delay_postpones_start() {
        let mut s = sim();
        let d = SimDuration::from_micros(3);
        let id = s.submit(
            SendSpec::simple(N0, N1, MYRI, 4 * KIB).on_core(CoreId(2)).with_offload_delay(d),
        );
        s.run_until_idle();
        assert_eq!(s.transfer(id).started_at.unwrap(), SimTime::ZERO + d);
    }

    #[test]
    fn rendezvous_dma_phases_on_distinct_rails_overlap() {
        // Two 2 MiB rendezvous transfers on different rails: DMA phases
        // overlap almost entirely (cores are free during DMA).
        let size = 2 * MIB;
        let mut s = sim();
        let a = s.submit(SendSpec::simple(N0, N1, MYRI, size));
        let b = s.submit(SendSpec::simple(N0, N1, QUAD, size));
        s.run_until_idle();
        let a_done = s.transfer(a).delivered_at.unwrap().as_micros_f64();
        let b_done = s.transfer(b).delivered_at.unwrap().as_micros_f64();
        let serial =
            (builtin::myri_10g().one_way_us(size) + builtin::qsnet2().one_way_us(size)).get();
        let parallel_end = a_done.max(b_done);
        assert!(
            parallel_end < 0.75 * serial,
            "DMA phases should overlap: end {parallel_end:.0}us vs serial {serial:.0}us"
        );
    }

    #[test]
    fn same_rail_transfers_serialize_on_the_nic() {
        let size = MIB;
        let mut s = sim();
        let a = s.submit(SendSpec::simple(N0, N1, MYRI, size));
        let b = s.submit(SendSpec::simple(N0, N1, MYRI, size));
        s.run_until_idle();
        let a_done = s.transfer(a).delivered_at.unwrap();
        let b_done = s.transfer(b).delivered_at.unwrap();
        assert!(b_done > a_done, "same-rail DMA must serialize");
        let gap = (b_done - a_done).as_micros_f64();
        let dma = builtin::myri_10g().rdv.time_us(size);
        assert!((gap - dma).abs() / dma < 0.05, "gap {gap:.0}us vs dma {dma:.0}us");
    }

    #[test]
    fn nic_idle_events_fire_once_and_only_when_truly_idle() {
        let mut s = sim();
        s.submit(SendSpec::simple(N0, N1, MYRI, 4 * KIB));
        s.submit(SendSpec::simple(N0, N1, MYRI, 4 * KIB));
        let events = s.run_until_idle();
        let idles: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, SimEvent::NicIdle { node, rail, .. } if *node == N0 && *rail == MYRI))
            .collect();
        assert_eq!(idles.len(), 1, "one busy->idle transition expected, got {idles:?}");
    }

    #[test]
    fn rts_arrival_is_visible_to_the_engine() {
        let mut s = sim();
        let id = s.submit(SendSpec::simple(N0, N1, MYRI, MIB));
        let events = s.run_until_idle();
        let rts = events.iter().find_map(|e| match e {
            SimEvent::RtsArrived { transfer, at } if *transfer == id => Some(*at),
            _ => None,
        });
        let at = rts.expect("RTS must be announced");
        let link = builtin::myri_10g();
        let want = link.rdv_setup_us + link.ctrl_latency_us;
        assert!((at.as_micros_f64() - want).abs() < 0.01);
    }

    #[test]
    fn forced_mode_overrides_threshold() {
        let mut s = sim();
        let id = s.submit(SendSpec::simple(N0, N1, MYRI, MIB).with_mode(TransferMode::Eager));
        assert_eq!(s.transfer(id).mode, TransferMode::Eager);
        let at = s.run_until_delivered(id);
        let want = builtin::myri_10g().one_way_us_in_mode(MIB, TransferMode::Eager).get();
        assert!((at.as_micros_f64() - want).abs() < 0.01);
    }

    #[test]
    fn wakeups_fire_in_order() {
        let mut s = sim();
        s.schedule_wakeup(SimTime::from_micros(10), 1);
        s.schedule_wakeup(SimTime::from_micros(5), 2);
        let events = s.run_until_idle();
        assert_eq!(
            events,
            vec![
                SimEvent::Wakeup { token: 2, at: SimTime::from_micros(5) },
                SimEvent::Wakeup { token: 1, at: SimTime::from_micros(10) },
            ]
        );
        assert_eq!(s.now(), SimTime::from_micros(10));
    }

    #[test]
    fn jitter_changes_durations_but_stays_deterministic() {
        let run = |seed: u64| {
            let mut s = Simulator::paper_testbed().with_jitter(0.05, seed);
            let id = s.submit(SendSpec::simple(N0, N1, MYRI, 64 * KIB));
            s.run_until_delivered(id).as_micros_f64()
        };
        let a1 = run(7);
        let a2 = run(7);
        let b = run(8);
        assert_eq!(a1, a2, "same seed must reproduce");
        assert_ne!(a1, b, "different seeds should differ");
        let clean = builtin::myri_10g().one_way_us(64 * KIB).get();
        assert!((a1 - clean).abs() / clean < 0.12, "jitter bounded by ~2x frac");
    }

    #[test]
    fn trace_captures_the_iso_split_idle_gap_shape() {
        // 2 MiB on each rail (roughly iso-split of 4 MiB): Myri finishes
        // first and sits idle while Quadrics drains — the §IV-A effect.
        let size = 2 * MIB;
        let mut s = Simulator::paper_testbed().with_trace();
        let a = s.submit(SendSpec::simple(N0, N1, MYRI, size));
        let b = s.submit(SendSpec::simple(N0, N1, QUAD, size));
        s.run_until_idle();
        let myri_done = s.transfer(a).delivered_at.unwrap();
        let quad_done = s.transfer(b).delivered_at.unwrap();
        assert!(myri_done < quad_done);
        let idle = s.trace().nic_idle_within(N0, MYRI, NicDir::Tx, myri_done, quad_done);
        let gap = quad_done - myri_done;
        assert!(
            (idle.as_micros_f64() - gap.as_micros_f64()).abs() < 1.0,
            "Myri idle {idle} should cover the tail gap {gap}"
        );
        // The paper reports ~670us for this configuration.
        assert!(
            (gap.as_micros_f64() - 670.0).abs() < 200.0,
            "idle gap {gap} should be in the neighbourhood of the paper's 670us"
        );
    }

    #[test]
    fn bandwidth_degrade_stretches_durations_and_clears() {
        let size = 64 * KIB;
        let clean = {
            let mut s = sim();
            let id = s.submit(SendSpec::simple(N0, N1, MYRI, size));
            s.run_until_delivered(id).as_micros_f64()
        };
        let mut s = sim();
        s.set_rail_fault(MYRI, 4.0, SimDuration::ZERO);
        let slow = s.submit(SendSpec::simple(N0, N1, MYRI, size));
        let slow_at = s.run_until_delivered(slow).as_micros_f64();
        assert!(
            (slow_at - 4.0 * clean).abs() / clean < 0.05,
            "4x time scale: {slow_at:.1}us vs clean {clean:.1}us"
        );
        s.clear_rail_fault(MYRI);
        let healed = s.submit(SendSpec::simple(N0, N1, MYRI, size));
        let healed_dur = s.run_until_delivered(healed) - s.transfer(healed).started_at.unwrap();
        assert!((healed_dur.as_micros_f64() - clean).abs() < 0.01, "shaping must clear");
    }

    #[test]
    fn latency_spike_adds_fixed_extra_time() {
        let size = 4 * KIB; // eager: one flight pays the extra once
        let extra = SimDuration::from_micros(500);
        let clean = builtin::myri_10g().one_way_us(size).get();
        let mut s = sim();
        s.set_rail_fault(MYRI, 1.0, extra);
        let id = s.submit(SendSpec::simple(N0, N1, MYRI, size));
        let at = s.run_until_delivered(id).as_micros_f64();
        assert!((at - (clean + 500.0)).abs() < 0.01, "spiked {at:.1}us vs clean {clean:.1}us");
    }

    #[test]
    fn nominal_fault_shaping_is_exactly_inert() {
        let run = |touch: bool| {
            let mut s = Simulator::paper_testbed().with_jitter(0.05, 11);
            if touch {
                s.set_rail_fault(MYRI, 1.0, SimDuration::ZERO);
            }
            let a = s.submit(SendSpec::simple(N0, N1, MYRI, 64 * KIB));
            let b = s.submit(SendSpec::simple(N0, N1, QUAD, 2 * MIB));
            s.run_until_idle();
            (s.transfer(a).delivered_at, s.transfer(b).delivered_at)
        };
        assert_eq!(run(false), run(true), "(1.0, ZERO) shaping must be bit-identical");
    }

    #[test]
    fn nic_port_shaping_composes_with_the_rail_slot() {
        let size = 64 * KIB;
        let clean = {
            let mut s = sim();
            let id = s.submit(SendSpec::simple(N0, N1, MYRI, size));
            s.run_until_delivered(id).as_micros_f64()
        };
        // 2x on the rail, 2x on the sender's port: 4x total.
        let mut s = sim();
        s.set_rail_fault(MYRI, 2.0, SimDuration::ZERO);
        s.set_nic_fault(N0, MYRI, 2.0, SimDuration::ZERO);
        let id = s.submit(SendSpec::simple(N0, N1, MYRI, size));
        let at = s.run_until_delivered(id).as_micros_f64();
        assert!((at - 4.0 * clean).abs() / clean < 0.05, "composed 4x: {at:.1} vs {clean:.1}");
        // The untouched reverse port is nominal after clearing.
        s.clear_rail_fault(MYRI);
        s.clear_nic_fault(N0, MYRI);
        let healed = s.submit(SendSpec::simple(N0, N1, MYRI, size));
        let dur = s.run_until_delivered(healed) - s.transfer(healed).started_at.unwrap();
        assert!((dur.as_micros_f64() - clean).abs() < 0.01, "port shaping must clear");
    }

    #[test]
    fn receiver_port_spike_charges_transfers_into_it() {
        let size = 4 * KIB;
        let extra = SimDuration::from_micros(300);
        let clean = builtin::myri_10g().one_way_us(size).get();
        let mut s = sim();
        s.set_nic_fault(N1, MYRI, 1.0, extra);
        let id = s.submit(SendSpec::simple(N0, N1, MYRI, size));
        let at = s.run_until_delivered(id).as_micros_f64();
        assert!((at - (clean + 300.0)).abs() < 0.01, "rx-port spike: {at:.1} vs {clean:.1}");
        // Traffic avoiding the sick port is untouched.
        let other = s.submit(SendSpec::simple(N1, N0, QUAD, size));
        let o = s.run_until_delivered(other) - s.transfer(other).started_at.unwrap();
        let quad_clean = builtin::qsnet2().one_way_us(size).get();
        assert!((o.as_micros_f64() - quad_clean).abs() < 0.01);
    }

    #[test]
    fn nominal_nic_shaping_is_exactly_inert() {
        let run = |touch: bool| {
            let mut s = Simulator::paper_testbed().with_jitter(0.05, 11);
            if touch {
                s.set_nic_fault(N0, MYRI, 1.0, SimDuration::ZERO);
                s.set_nic_fault(N1, QUAD, 1.0, SimDuration::ZERO);
            }
            let a = s.submit(SendSpec::simple(N0, N1, MYRI, 64 * KIB));
            let b = s.submit(SendSpec::simple(N0, N1, QUAD, 2 * MIB));
            s.run_until_idle();
            (s.transfer(a).delivered_at, s.transfer(b).delivered_at)
        };
        assert_eq!(run(false), run(true), "nominal port shaping must be bit-identical");
    }

    #[test]
    fn cancel_retracts_queued_transfer_and_frees_the_rail() {
        let size = MIB;
        let mut s = sim();
        let a = s.submit(SendSpec::simple(N0, N1, MYRI, size));
        let busy_after_a = s.nic_busy_until(N0, MYRI);
        let b = s.submit(SendSpec::simple(N0, N1, MYRI, size));
        assert!(s.nic_busy_until(N0, MYRI) > busy_after_a);
        assert!(s.try_cancel_all(&[b]), "queued-behind transfer must be cancellable");
        assert_eq!(s.nic_busy_until(N0, MYRI), busy_after_a, "rail time released");
        assert_eq!(s.transfer(b).state, TransferState::Cancelled);
        // The survivor still delivers on schedule; the cancelled one never does.
        let a_at = s.run_until_delivered(a);
        assert_eq!(a_at, busy_after_a);
        assert_eq!(s.transfer(b).delivered_at, None);
        // Double cancel is refused.
        assert!(!s.try_cancel_all(&[b]));
    }

    #[test]
    fn cancel_refuses_started_or_interleaved_transfers() {
        let size = MIB;
        // Started: transfer A begins at t=0 on an idle rail.
        let mut s = sim();
        let a = s.submit(SendSpec::simple(N0, N1, MYRI, size));
        assert!(!s.try_cancel_all(&[a]), "a window touching now must not retract");

        // Interleaved: C queued behind B; cancelling B alone would leave a
        // hole under C's reservation.
        let mut s = sim();
        let _a = s.submit(SendSpec::simple(N0, N1, MYRI, size));
        let b = s.submit(SendSpec::simple(N0, N1, MYRI, size));
        let c = s.submit(SendSpec::simple(N0, N1, MYRI, size));
        assert!(!s.try_cancel_all(&[b]), "not the tail of the chain");
        // Cancelling both rear transfers together is fine.
        assert!(s.try_cancel_all(&[b, c]));
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_is_rejected() {
        let mut s = sim();
        s.submit(SendSpec::simple(N0, N0, MYRI, 64));
    }

    #[test]
    #[should_panic(expected = "bad rail")]
    fn bad_rail_is_rejected() {
        let mut s = sim();
        s.submit(SendSpec::simple(N0, N1, RailId(9), 64));
    }
}
