//! Typed identifiers for simulated resources.
//!
//! Newtypes instead of bare `usize` so a rail index can never be confused
//! with a core index — at zero runtime cost.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub usize);

        impl $name {
            /// Raw index.
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A node (machine) in the cluster.
    NodeId, "n"
);
id_type!(
    /// A core within a node.
    CoreId, "c"
);
id_type!(
    /// A rail (parallel network); each node owns one NIC per rail.
    RailId, "r"
);

/// A NIC is addressed by (node, rail).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NicKey {
    /// Owning node.
    pub node: NodeId,
    /// Rail this NIC attaches to.
    pub rail: RailId,
}

/// NICs are full duplex: the transmit and receive engines are independent
/// serial resources (an outgoing DMA does not block an incoming one).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum NicDir {
    /// Transmit side (injection, outgoing DMA).
    Tx,
    /// Receive side (receive copy window, incoming DMA).
    Rx,
}

impl fmt::Display for NicDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NicDir::Tx => write!(f, "tx"),
            NicDir::Rx => write!(f, "rx"),
        }
    }
}

/// A transfer handle, unique within one simulator run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransferId(pub u64);

impl fmt::Debug for TransferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for TransferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{}", NodeId(1)), "n1");
        assert_eq!(format!("{:?}", CoreId(3)), "c3");
        assert_eq!(format!("{}", RailId(0)), "r0");
        assert_eq!(format!("{}", TransferId(42)), "x42");
        let key = NicKey { node: NodeId(1), rail: RailId(0) };
        assert_eq!(format!("{key:?}"), "NicKey { node: n1, rail: r0 }");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId(0) < NodeId(1));
        assert!(TransferId(1) < TransferId(2));
    }
}
