//! The simulator's calendar: a stable priority queue of timed events.
//!
//! Events that share a timestamp pop in insertion order (FIFO), which keeps
//! the simulation deterministic and makes "NIC grabbed the packet that was
//! enqueued first" reasoning valid. Cancellation is supported by id — used
//! to retract stale idle notifications when a resource gets re-busied.
//!
//! Two implementations share that contract:
//!
//! * [`EventQueue`] — an **indexed calendar queue**: payloads live in a
//!   slab whose slots carry generation counters, so cancellation is O(1)
//!   (bump the generation, free the slot) with no tombstone set to search.
//!   Time is indexed by a ring of near-future buckets (events within
//!   ~1 ms of the cursor) backed by a binary heap for far-future events,
//!   which migrate into the ring lazily as the cursor approaches them.
//! * [`LegacyEventQueue`] — the original binary heap with a cancelled-id
//!   tombstone set, kept as the reference for equivalence tests. Its
//!   hygiene bug (tombstones of already-popped events accumulating
//!   forever) is fixed by draining eagerly once tombstones outnumber live
//!   entries.
//!
//! Both pop in strictly ascending `(time, insertion order)` — swapping one
//! for the other must never change a simulation's event order.

use nm_model::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// Nanoseconds per bucket, as a shift: 2^12 = 4.096 µs wide.
const BUCKET_SHIFT: u32 = 12;
/// Buckets in the near-future ring (must be a power of two): the ring
/// covers ~1.05 ms ahead of the cursor.
const NUM_BUCKETS: usize = 256;

/// Reference to a slab slot, ordered by `(time, seq)` for the far heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EventRef {
    time: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl PartialOrd for EventRef {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventRef {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

#[derive(Debug)]
struct Slot<T> {
    gen: u32,
    payload: Option<T>,
}

/// A stable, cancellable time-ordered queue (indexed calendar).
#[derive(Debug)]
pub struct EventQueue<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    /// Ring of buckets covering ticks `[cursor_tick, cursor_tick + NUM_BUCKETS)`.
    near: Vec<Vec<EventRef>>,
    /// Total refs (live + stale) currently in the ring.
    near_refs: usize,
    /// Events at ticks `>= cursor_tick + NUM_BUCKETS`.
    far: BinaryHeap<Reverse<EventRef>>,
    cursor_tick: u64,
    live: usize,
    next_seq: u64,
}

fn tick_of(time: SimTime) -> u64 {
    time.as_nanos() >> BUCKET_SHIFT
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            near: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            near_refs: 0,
            far: BinaryHeap::new(),
            cursor_tick: 0,
            live: 0,
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`; returns a handle for cancellation.
    // nm-analyzer: allow(unbounded-growth) -- calendar slab: the free list recycles retired
    // slots, so population equals outstanding events
    pub fn push(&mut self, time: SimTime, payload: T) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].payload = Some(payload);
                s
            }
            None => {
                self.slots.push(Slot { gen: 0, payload: Some(payload) });
                (self.slots.len() - 1) as u32
            }
        };
        let gen = self.slots[slot as usize].gen;
        let r = EventRef { time, seq, slot, gen };
        // Late pushes (behind the cursor) land in the cursor's own bucket:
        // the min-scan there compares real `(time, seq)`, so they still pop
        // first. Far-future pushes go to the overflow heap.
        let tick = tick_of(time).max(self.cursor_tick);
        if tick < self.cursor_tick + NUM_BUCKETS as u64 {
            self.near[(tick as usize) & (NUM_BUCKETS - 1)].push(r);
            self.near_refs += 1;
        } else {
            self.far.push(Reverse(r));
        }
        self.live += 1;
        EventId { slot, gen }
    }

    /// Cancels a previously scheduled event in O(1). Cancelling an
    /// already-popped or already-cancelled event is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        let s = &mut self.slots[id.slot as usize];
        if s.gen == id.gen && s.payload.is_some() {
            self.retire(id.slot);
        }
    }

    /// Frees a slot: the generation bump orphans every outstanding
    /// [`EventRef`], which the scans then drop lazily.
    // nm-analyzer: allow(unbounded-growth) -- free list is bounded by the slab: one entry per
    // retired slot, popped on reuse
    fn retire(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.payload = None;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
    }

    fn ref_is_live(&self, r: &EventRef) -> bool {
        self.slots[r.slot as usize].gen == r.gen
    }

    /// Moves far-heap events that entered the ring's horizon into their
    /// buckets, dropping stale refs on the way.
    // nm-analyzer: allow(unbounded-growth) -- moves refs between near ring and far heap; total
    // population is still one ref per outstanding event
    fn migrate_far(&mut self) {
        let horizon = self.cursor_tick + NUM_BUCKETS as u64;
        while let Some(Reverse(r)) = self.far.peek().copied() {
            if !self.ref_is_live(&r) {
                self.far.pop();
                continue;
            }
            if tick_of(r.time) >= horizon {
                break;
            }
            self.far.pop();
            let tick = tick_of(r.time).max(self.cursor_tick);
            self.near[(tick as usize) & (NUM_BUCKETS - 1)].push(r);
            self.near_refs += 1;
        }
    }

    /// Advances the cursor to the bucket holding the earliest live event
    /// and returns the position of its minimal `(time, seq)` ref as
    /// `(bucket, index)`. `None` when no live events remain.
    fn find_min(&mut self) -> Option<(usize, usize)> {
        if self.live == 0 {
            return None;
        }
        loop {
            if self.near_refs == 0 {
                // Every live event is in the far heap: jump the cursor to
                // its top instead of stepping through empty buckets.
                while let Some(Reverse(r)) = self.far.peek() {
                    if self.ref_is_live(r) {
                        break;
                    }
                    self.far.pop();
                }
                let top = self.far.peek().expect("live > 0 and ring empty");
                self.cursor_tick = tick_of(top.0.time);
                self.migrate_far();
            }
            let b = (self.cursor_tick as usize) & (NUM_BUCKETS - 1);
            // Drop stale refs, then pick the minimal live one.
            let mut i = 0;
            while i < self.near[b].len() {
                if self.ref_is_live(&self.near[b][i]) {
                    i += 1;
                } else {
                    self.near[b].swap_remove(i);
                    self.near_refs -= 1;
                }
            }
            if let Some((idx, _)) =
                self.near[b].iter().enumerate().min_by(|(_, a), (_, b)| a.cmp(b))
            {
                return Some((b, idx));
            }
            // Bucket exhausted: step the cursor, pulling far events that
            // the one-tick-wider horizon now covers.
            self.cursor_tick += 1;
            self.migrate_far();
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let (b, idx) = self.find_min()?;
        let r = self.near[b].swap_remove(idx);
        self.near_refs -= 1;
        let payload = self.slots[r.slot as usize].payload.take().expect("live ref");
        self.retire(r.slot);
        Some((r.time, payload))
    }

    /// Timestamp of the earliest live event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let (b, idx) = self.find_min()?;
        Some(self.near[b][idx].time)
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Handle into a [`LegacyEventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LegacyEventId(u64);

/// The original heap-plus-tombstones queue, kept as the behavioural
/// reference for the calendar. Same contract as [`EventQueue`].
#[derive(Debug)]
pub struct LegacyEventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<T> LegacyEventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        LegacyEventQueue { heap: BinaryHeap::new(), cancelled: HashSet::new(), next_seq: 0 }
    }

    /// Schedules `payload` at `time`; returns a handle for cancellation.
    // nm-analyzer: allow(unbounded-growth) -- reference heap kept for differential tests; one
    // entry per outstanding event, popped by the drain loop
    pub fn push(&mut self, time: SimTime, payload: T) -> LegacyEventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
        LegacyEventId(seq)
    }

    /// Cancels a previously scheduled event. Cancelling an already-popped
    /// or already-cancelled event is a no-op.
    pub fn cancel(&mut self, id: LegacyEventId) {
        self.cancelled.insert(id.0);
        // Hygiene: once tombstones outnumber half the heap, rebuilding is
        // cheaper than dragging them through every subsequent pop — and it
        // reclaims ids of events that were already popped, which would
        // otherwise pin HashSet memory forever.
        if self.cancelled.len() * 2 > self.heap.len() {
            self.drain_tombstones();
        }
    }

    fn drain_tombstones(&mut self) {
        let heap = std::mem::take(&mut self.heap);
        self.heap =
            heap.into_iter().filter(|Reverse(e)| !self.cancelled.contains(&e.seq)).collect();
        self.cancelled.clear();
    }

    /// Removes and returns the earliest event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Timestamp of the earliest live event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len().saturating_sub(self.cancelled.len())
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for LegacyEventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        let c = q.push(t(3), "c");
        q.cancel(a);
        q.cancel(c);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(q.is_empty());
        // Cancelling a dead event is harmless.
        q.cancel(a);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(t(7), ());
        q.push(t(3), ());
        assert_eq!(q.peek_time(), Some(t(3)));
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, t(3));
    }

    #[test]
    fn far_future_events_migrate_into_the_ring() {
        // Spread events far beyond the ring's ~1 ms horizon so they all
        // start in the overflow heap, then verify exact ordering.
        let ms = |m: u64| SimTime::from_nanos(m * 1_000_000);
        let mut q = EventQueue::new();
        for i in (0..50u64).rev() {
            q.push(ms(10 + i * 7), i);
        }
        for want in 0..50u64 {
            let (at, v) = q.pop().unwrap();
            assert_eq!((at, v), (ms(10 + want * 7), want));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn slot_reuse_does_not_resurrect_cancelled_events() {
        let mut q = EventQueue::new();
        let a = q.push(t(5), "a");
        q.cancel(a);
        // The freed slot is reused with a bumped generation; the stale ref
        // for "a" must not shadow or leak into the new event.
        let b = q.push(t(5), "b");
        assert_ne!(a, b);
        q.cancel(a); // stale handle: no-op
        assert_eq!(q.pop(), Some((t(5), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn late_push_behind_the_cursor_still_pops_first() {
        let mut q = EventQueue::new();
        q.push(t(5000), "later");
        assert_eq!(q.peek_time(), Some(t(5000))); // cursor advanced to ~5 ms
        q.push(t(1), "early");
        assert_eq!(q.pop(), Some((t(1), "early")));
        assert_eq!(q.pop(), Some((t(5000), "later")));
    }

    #[test]
    fn legacy_drains_tombstones_eagerly() {
        let mut q = LegacyEventQueue::new();
        let ids: Vec<_> = (0..100).map(|i| q.push(t(i), i)).collect();
        for id in &ids[..60] {
            q.cancel(*id);
        }
        // More than half the entries were tombstoned: the set was drained.
        assert!(q.cancelled.len() * 2 <= q.heap.len().max(1), "tombstones drained");
        assert_eq!(q.len(), 40);
        assert_eq!(q.pop(), Some((t(60), 60)));
    }

    #[test]
    fn legacy_cancel_of_popped_id_does_not_pin_memory() {
        let mut q = LegacyEventQueue::new();
        let ids: Vec<_> = (0..10).map(|i| q.push(t(i), i)).collect();
        for _ in 0..10 {
            q.pop();
        }
        for id in ids {
            q.cancel(id); // ids of popped events: drained, not leaked
        }
        assert!(q.cancelled.is_empty());
        assert_eq!(q.len(), 0);
    }

    proptest! {
        /// Popping yields a non-decreasing time sequence regardless of
        /// insertion order and cancellations.
        #[test]
        fn times_nondecreasing(
            times in proptest::collection::vec(0u64..1000, 1..200),
            cancel_mask in proptest::collection::vec(any::<bool>(), 1..200),
        ) {
            let mut q = EventQueue::new();
            let ids: Vec<_> = times.iter().map(|&us| q.push(t(us), us)).collect();
            for (id, &dead) in ids.iter().zip(cancel_mask.iter()) {
                if dead {
                    q.cancel(*id);
                }
            }
            let mut last = SimTime::ZERO;
            let mut popped = 0usize;
            while let Some((at, _)) = q.pop() {
                prop_assert!(at >= last);
                last = at;
                popped += 1;
            }
            let live = times.len()
                - cancel_mask.iter().take(times.len()).filter(|&&d| d).count();
            prop_assert_eq!(popped, live);
        }

        /// The calendar pops the exact same `(time, payload)` sequence as
        /// the legacy heap under arbitrary interleavings of push, cancel
        /// and pop — the bit-identical-figures guarantee.
        #[test]
        fn calendar_matches_legacy_pop_order(
            ops in proptest::collection::vec((0u8..10, 0u64..50_000u64), 1..300),
        ) {
            let mut cal = EventQueue::new();
            let mut leg = LegacyEventQueue::new();
            // Live handles only: the sim never cancels an already-fired
            // event, and the legacy queue's len() is approximate under
            // such stale cancels (tombstones of popped ids).
            let mut live: Vec<(u64, EventId, LegacyEventId)> = Vec::new();
            let mut tag = 0u64;
            for &(op, arg) in &ops {
                match op {
                    // 60%: push at an arbitrary time.
                    0..=5 => {
                        tag += 1;
                        live.push((tag, cal.push(t(arg), tag), leg.push(t(arg), tag)));
                    }
                    // 20%: cancel a still-pending event.
                    6..=7 if !live.is_empty() => {
                        let i = (arg as usize) % live.len();
                        let (_, cid, lid) = live.swap_remove(i);
                        cal.cancel(cid);
                        leg.cancel(lid);
                    }
                    // 20%: pop and compare.
                    _ => {
                        let got = cal.pop();
                        prop_assert_eq!(got, leg.pop());
                        if let Some((_, popped_tag)) = got {
                            live.retain(|&(g, _, _)| g != popped_tag);
                        }
                    }
                }
                prop_assert_eq!(cal.len(), leg.len());
                prop_assert_eq!(cal.peek_time(), leg.peek_time());
            }
            loop {
                let (a, b) = (cal.pop(), leg.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
