//! The simulator's calendar: a stable priority queue of timed events.
//!
//! Events that share a timestamp pop in insertion order (FIFO), which keeps
//! the simulation deterministic and makes "NIC grabbed the packet that was
//! enqueued first" reasoning valid. Cancellation is supported by id — used
//! to retract stale idle notifications when a resource gets re-busied.

use nm_model::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// A stable, cancellable time-ordered queue.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), cancelled: HashSet::new(), next_seq: 0 }
    }

    /// Schedules `payload` at `time`; returns a handle for cancellation.
    pub fn push(&mut self, time: SimTime, payload: T) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Cancelling an already-popped or
    /// already-cancelled event is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Removes and returns the earliest event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Timestamp of the earliest live event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        let c = q.push(t(3), "c");
        q.cancel(a);
        q.cancel(c);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(q.is_empty());
        // Cancelling a dead event is harmless.
        q.cancel(a);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(t(7), ());
        q.push(t(3), ());
        assert_eq!(q.peek_time(), Some(t(3)));
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, t(3));
    }

    proptest! {
        /// Popping yields a non-decreasing time sequence regardless of
        /// insertion order and cancellations.
        #[test]
        fn times_nondecreasing(
            times in proptest::collection::vec(0u64..1000, 1..200),
            cancel_mask in proptest::collection::vec(any::<bool>(), 1..200),
        ) {
            let mut q = EventQueue::new();
            let ids: Vec<_> = times.iter().map(|&us| q.push(t(us), us)).collect();
            for (id, &dead) in ids.iter().zip(cancel_mask.iter()) {
                if dead {
                    q.cancel(*id);
                }
            }
            let mut last = SimTime::ZERO;
            let mut popped = 0usize;
            while let Some((at, _)) = q.pop() {
                prop_assert!(at >= last);
                last = at;
                popped += 1;
            }
            let live = times.len()
                - cancel_mask.iter().take(times.len()).filter(|&&d| d).count();
            prop_assert_eq!(popped, live);
        }
    }
}
