//! # nm-sim — discrete-event multirail cluster simulator
//!
//! This crate stands in for the paper's hardware testbed (two dual dual-core
//! Opteron nodes linked by MX/Myri-10G and Elan/QsNetII rails). It simulates,
//! on a deterministic virtual clock:
//!
//! * **NICs** — one per (node, rail); transmit injection and receive windows
//!   occupy the NIC, so concurrent transfers on one rail serialize while
//!   transfers on different rails proceed in parallel.
//! * **Cores** — eager (PIO) sends and receives occupy a host core for the
//!   copy duration; two eager injections from the same core serialize, which
//!   is the effect behind the paper's Fig 3/4, and the reason offloading
//!   copies to idle cores (Fig 4c / Fig 7) recovers rail parallelism.
//! * **Protocols** — eager messages are injected immediately; messages at or
//!   above the rendezvous threshold run an RTS/CTS handshake followed by a
//!   zero-copy DMA phase that leaves the cores idle.
//!
//! The engine in `nm-core` drives a [`Simulator`] exactly the way
//! NewMadeleine drives its NICs: it submits transfers and reacts to
//! [`SimEvent`]s — deliveries, NIC-idle and core-idle transitions ("the
//! packet scheduler is only activated when a NIC becomes idle", paper §III-A).
//!
//! Uncontended transfers reproduce the analytic durations of
//! [`nm_model::LinkModel`] exactly (tested in `sim::tests`), so sampled
//! profiles, predictions and simulated outcomes are mutually consistent.

// No unsafe anywhere in this crate; keep it that way.
#![forbid(unsafe_code)]

pub mod event;
pub mod gantt;
pub mod ids;
pub mod resource;
pub mod sim;
pub mod topology;
pub mod trace;
pub mod transfer;

/// The *network* topology module under an unambiguous name: call sites
/// that also import `nm_runtime::topology` (the intra-node core hierarchy)
/// can say `nm_sim::net::ClusterSpec` and read unambiguously.
pub use topology as net;

pub use event::{EventQueue, LegacyEventQueue};
pub use ids::{CoreId, NicKey, NodeId, RailId, TransferId};
pub use sim::{SendSpec, SimEvent, Simulator};
pub use topology::{ClusterSpec, NodeSpec, SwitchSpec};
pub use trace::{Trace, TraceRecord};
pub use transfer::{Transfer, TransferState};
