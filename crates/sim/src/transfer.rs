//! Per-transfer bookkeeping: the full timeline of one message chunk.

use crate::ids::{CoreId, NodeId, RailId, TransferId};
use nm_model::{SimTime, TransferMode};

/// Lifecycle of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferState {
    /// Submitted, waiting for resources (or for the rendezvous handshake).
    Pending,
    /// Payload moving: PIO injection or DMA phase in progress.
    InFlight,
    /// Fully delivered to the destination.
    Delivered,
    /// Retracted before any resource started serving it (see
    /// [`crate::Simulator::try_cancel_all`]); produces no further events.
    Cancelled,
}

/// One simulated transfer and its measured timeline.
#[derive(Debug, Clone)]
pub struct Transfer {
    /// Handle.
    pub id: TransferId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Rail carrying the payload.
    pub rail: RailId,
    /// Payload size in bytes.
    pub size: u64,
    /// Protocol actually used.
    pub mode: TransferMode,
    /// Core that performed (or posted) the send.
    pub send_core: CoreId,
    /// Core that absorbs the receive copy (eager only).
    pub recv_core: CoreId,
    /// Current state.
    pub state: TransferState,
    /// When the engine submitted the transfer.
    pub submitted_at: SimTime,
    /// When injection (PIO copy) or the rendezvous post actually started.
    pub started_at: Option<SimTime>,
    /// When the sender finished injecting (send-side completion for eager;
    /// end of the DMA phase for rendezvous).
    pub send_done_at: Option<SimTime>,
    /// When the payload was fully available at the destination.
    pub delivered_at: Option<SimTime>,
}

impl Transfer {
    /// End-to-end duration (submit → delivery), if delivered.
    pub fn total_duration(&self) -> Option<nm_model::SimDuration> {
        self.delivered_at.map(|d| d - self.submitted_at)
    }

    /// Queueing delay before resources were acquired, if started.
    pub fn queue_delay(&self) -> Option<nm_model::SimDuration> {
        self.started_at.map(|s| s - self.submitted_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::*;
    use nm_model::SimDuration;

    #[test]
    fn durations_derive_from_timeline() {
        let mut x = Transfer {
            id: TransferId(1),
            src: NodeId(0),
            dst: NodeId(1),
            rail: RailId(0),
            size: 1024,
            mode: TransferMode::Eager,
            send_core: CoreId(0),
            recv_core: CoreId(0),
            state: TransferState::Pending,
            submitted_at: SimTime::from_micros(10),
            started_at: None,
            send_done_at: None,
            delivered_at: None,
        };
        assert_eq!(x.total_duration(), None);
        assert_eq!(x.queue_delay(), None);
        x.started_at = Some(SimTime::from_micros(12));
        x.delivered_at = Some(SimTime::from_micros(30));
        x.state = TransferState::Delivered;
        assert_eq!(x.queue_delay(), Some(SimDuration::from_micros(2)));
        assert_eq!(x.total_duration(), Some(SimDuration::from_micros(20)));
    }
}
