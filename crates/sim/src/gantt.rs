//! ASCII occupancy timelines from a [`Trace`] — the textual equivalent of
//! the paper's Fig 4 diagrams (who was busy when: cores and NICs).
//!
//! ```text
//! n0/c0  |████████▒▒▒▒····································|
//! n0/r0  |████████········································|
//! n0/r1  |········████████████████████████████████████████|
//! ```
//!
//! Each row is one resource; each column one time bucket. A bucket is drawn
//! `█` when the resource was busy for more than half of it, `▒` for a
//! partial reservation, `·` when idle.

use crate::ids::{CoreId, NicDir, NodeId, RailId};
use crate::trace::{Trace, TraceRecord};
use nm_model::{SimDuration, SimTime};

/// A renderable row: one resource's busy windows.
#[derive(Debug, Clone)]
struct Row {
    label: String,
    windows: Vec<(SimTime, SimTime)>,
}

/// Renders the trace between `from` and `to` into `width` buckets.
///
/// Rows appear in the order resources first show up in the trace (cores of
/// a node before its NICs, grouped by node).
pub fn render(trace: &Trace, from: SimTime, to: SimTime, width: usize) -> String {
    assert!(width >= 8, "need at least 8 columns");
    assert!(to > from, "empty interval");
    let mut rows: Vec<Row> = Vec::new();

    let mut upsert = |label: String, window: (SimTime, SimTime)| {
        if let Some(row) = rows.iter_mut().find(|r| r.label == label) {
            row.windows.push(window);
        } else {
            rows.push(Row { label, windows: vec![window] });
        }
    };

    for rec in trace.records() {
        match *rec {
            TraceRecord::CoreBusy { node, core, from: f, to: t, .. } => {
                upsert(resource_label(node, Res::Core(core)), (f, t));
            }
            TraceRecord::NicBusy { node, rail, dir, from: f, to: t, .. } => {
                upsert(resource_label(node, Res::Nic(rail, dir)), (f, t));
            }
            TraceRecord::Delivered { .. } => {}
        }
    }
    rows.sort_by(|a, b| a.label.cmp(&b.label));

    let span = to - from;
    let bucket = SimDuration::from_nanos((span.as_nanos() / width as u64).max(1));
    let label_width = rows.iter().map(|r| r.label.len()).max().unwrap_or(5);

    let mut out = String::new();
    out.push_str(&format!("{:label_width$}  t = {} .. {} ({} per column)\n", "", from, to, bucket));
    for row in &rows {
        out.push_str(&format!("{:label_width$} |", row.label));
        for b in 0..width {
            let b_start = from + bucket * b as u64;
            let b_end = b_start + bucket;
            let mut busy = SimDuration::ZERO;
            for &(f, t) in &row.windows {
                let lo = f.max(b_start);
                let hi = t.min(b_end);
                busy += hi.saturating_since(lo);
            }
            let frac = busy.as_nanos() as f64 / bucket.as_nanos() as f64;
            out.push(if frac > 0.5 {
                '\u{2588}' // █
            } else if frac > 0.0 {
                '\u{2592}' // ▒
            } else {
                '\u{00b7}' // ·
            });
        }
        out.push_str("|\n");
    }
    out
}

enum Res {
    Core(CoreId),
    Nic(RailId, NicDir),
}

fn resource_label(node: NodeId, res: Res) -> String {
    match res {
        Res::Core(c) => format!("{node}/{c}"),
        Res::Nic(r, d) => format!("{node}/{r}.{d}"),
    }
}

/// Convenience: render the whole trace (zero to the last record).
pub fn render_all(trace: &Trace, width: usize) -> String {
    let end = trace
        .records()
        .iter()
        .map(|r| match *r {
            TraceRecord::CoreBusy { to, .. } | TraceRecord::NicBusy { to, .. } => to,
            TraceRecord::Delivered { at, .. } => at,
        })
        .max()
        .unwrap_or(SimTime::from_micros(1));
    render(trace, SimTime::ZERO, end, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TransferId;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn sample_trace() -> Trace {
        let mut tr = Trace::enabled();
        tr.push(TraceRecord::CoreBusy {
            node: NodeId(0),
            core: CoreId(0),
            from: t(0),
            to: t(50),
            transfer: TransferId(0),
        });
        tr.push(TraceRecord::NicBusy {
            node: NodeId(0),
            rail: RailId(1),
            dir: crate::ids::NicDir::Tx,
            from: t(50),
            to: t(100),
            transfer: TransferId(0),
        });
        tr.push(TraceRecord::Delivered { transfer: TransferId(0), at: t(100) });
        tr
    }

    #[test]
    fn renders_one_row_per_resource() {
        let s = render(&sample_trace(), t(0), t(100), 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3, "header + two resources:\n{s}");
        assert!(lines[1].starts_with("n0/c0"));
        assert!(lines[2].starts_with("n0/r1.tx"));
    }

    #[test]
    fn busy_halves_render_correctly() {
        let s = render(&sample_trace(), t(0), t(100), 10);
        let core_row: String =
            s.lines().find(|l| l.starts_with("n0/c0")).unwrap().chars().collect();
        let cells: Vec<char> =
            core_row[core_row.find('|').unwrap() + 1..].chars().take(10).collect();
        assert!(cells[..5].iter().all(|&c| c == '\u{2588}'), "{cells:?}");
        assert!(cells[5..].iter().all(|&c| c == '\u{00b7}'), "{cells:?}");
    }

    #[test]
    fn render_all_covers_the_last_record() {
        let s = render_all(&sample_trace(), 20);
        assert!(s.contains("100.000us"), "{s}");
    }

    #[test]
    fn real_simulation_renders_fig4_style() {
        use crate::sim::{SendSpec, Simulator};
        use crate::topology::ClusterSpec;
        let mut sim = Simulator::new(ClusterSpec::paper_testbed()).with_trace();
        sim.submit(SendSpec::simple(NodeId(0), NodeId(1), RailId(0), 8192));
        sim.submit(SendSpec::simple(NodeId(0), NodeId(1), RailId(1), 8192));
        sim.run_until_idle();
        let s = render_all(sim.trace(), 40);
        // Sending core, both tx NICs, receiving core and both rx NICs.
        assert!(s.contains("n0/c0"));
        assert!(s.contains("n0/r0"));
        assert!(s.contains("n0/r1"));
        assert!(s.contains("n1/c0"));
        // The serialized second injection shows as a later busy block.
        assert!(s.lines().count() >= 6);
    }

    #[test]
    #[should_panic(expected = "at least 8 columns")]
    fn tiny_width_rejected() {
        let _ = render(&sample_trace(), t(0), t(100), 2);
    }
}
