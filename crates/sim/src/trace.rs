//! Event tracing and post-hoc utilization analysis.
//!
//! The paper quantifies rail under-utilization directly ("the Myri-10G
//! network is thus unused for 670 µs" under iso-split, §IV-A); the trace
//! records every resource window so benches and tests can measure exactly
//! that kind of idle gap.

use crate::ids::{CoreId, NicDir, NodeId, RailId, TransferId};
use nm_model::{SimDuration, SimTime};

/// One recorded occupancy window or milestone.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// One direction of a NIC was occupied (injection, receive window or
    /// DMA phase). NICs are full duplex: tx and rx book independently.
    NicBusy {
        /// Owning node.
        node: NodeId,
        /// Rail of the NIC.
        rail: RailId,
        /// Direction (transmit or receive engine).
        dir: NicDir,
        /// Window start.
        from: SimTime,
        /// Window end.
        to: SimTime,
        /// Transfer that held the NIC.
        transfer: TransferId,
    },
    /// A core was occupied (PIO copy, rendezvous setup, offload shim).
    CoreBusy {
        /// Owning node.
        node: NodeId,
        /// Core index.
        core: CoreId,
        /// Window start.
        from: SimTime,
        /// Window end.
        to: SimTime,
        /// Transfer that held the core (control work uses the id it serves).
        transfer: TransferId,
    },
    /// A transfer was fully delivered.
    Delivered {
        /// The transfer.
        transfer: TransferId,
        /// Delivery instant.
        at: SimTime,
    },
}

/// An append-only trace of simulator activity.
#[derive(Debug, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl Trace {
    /// A trace that records nothing (zero overhead).
    pub fn disabled() -> Self {
        Trace { records: Vec::new(), enabled: false }
    }

    /// A recording trace.
    pub fn enabled() -> Self {
        Trace { records: Vec::new(), enabled: true }
    }

    /// Appends a record if recording is on.
    // nm-analyzer: allow(unbounded-growth) -- diagnostic buffer, gated on `enabled`; disabled
    // traces never grow and enabled ones live only for a test's run
    pub fn push(&mut self, rec: TraceRecord) {
        if self.enabled {
            self.records.push(rec);
        }
    }

    /// All records, in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Total time one direction of the NIC `(node, rail)` was busy inside
    /// `[from, to]` (windows are clipped to the interval).
    pub fn nic_busy_within(
        &self,
        node: NodeId,
        rail: RailId,
        dir: NicDir,
        from: SimTime,
        to: SimTime,
    ) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for r in &self.records {
            if let TraceRecord::NicBusy { node: n, rail: l, dir: d, from: f, to: t, .. } = *r {
                if n == node && l == rail && d == dir {
                    let lo = f.max(from);
                    let hi = t.min(to);
                    total += hi.saturating_since(lo);
                }
            }
        }
        total
    }

    /// Idle time of one direction of the NIC `(node, rail)` inside
    /// `[from, to]` — the paper's "unused for 670 µs" metric (tx side).
    pub fn nic_idle_within(
        &self,
        node: NodeId,
        rail: RailId,
        dir: NicDir,
        from: SimTime,
        to: SimTime,
    ) -> SimDuration {
        to.saturating_since(from) - self.nic_busy_within(node, rail, dir, from, to)
    }

    /// Total busy time of a core inside `[from, to]`.
    pub fn core_busy_within(
        &self,
        node: NodeId,
        core: CoreId,
        from: SimTime,
        to: SimTime,
    ) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for r in &self.records {
            if let TraceRecord::CoreBusy { node: n, core: c, from: f, to: t, .. } = *r {
                if n == node && c == core {
                    let lo = f.max(from);
                    let hi = t.min(to);
                    total += hi.saturating_since(lo);
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::disabled();
        tr.push(TraceRecord::Delivered { transfer: TransferId(1), at: t(5) });
        assert!(tr.records().is_empty());
    }

    #[test]
    fn busy_and_idle_accounting_clip_to_interval() {
        let mut tr = Trace::enabled();
        let nic = (NodeId(0), RailId(1));
        tr.push(TraceRecord::NicBusy {
            node: nic.0,
            rail: nic.1,
            dir: NicDir::Tx,
            from: t(10),
            to: t(20),
            transfer: TransferId(1),
        });
        tr.push(TraceRecord::NicBusy {
            node: nic.0,
            rail: nic.1,
            dir: NicDir::Tx,
            from: t(30),
            to: t(50),
            transfer: TransferId(2),
        });
        // Unrelated NIC and the other direction do not pollute the answer.
        tr.push(TraceRecord::NicBusy {
            node: NodeId(1),
            rail: RailId(1),
            dir: NicDir::Tx,
            from: t(0),
            to: t(100),
            transfer: TransferId(3),
        });
        tr.push(TraceRecord::NicBusy {
            node: nic.0,
            rail: nic.1,
            dir: NicDir::Rx,
            from: t(0),
            to: t(100),
            transfer: TransferId(4),
        });
        let busy = tr.nic_busy_within(nic.0, nic.1, NicDir::Tx, t(15), t(40));
        assert_eq!(busy, SimDuration::from_micros(5 + 10));
        let idle = tr.nic_idle_within(nic.0, nic.1, NicDir::Tx, t(15), t(40));
        assert_eq!(idle, SimDuration::from_micros(10));
    }

    #[test]
    fn core_accounting_is_per_core() {
        let mut tr = Trace::enabled();
        tr.push(TraceRecord::CoreBusy {
            node: NodeId(0),
            core: CoreId(0),
            from: t(0),
            to: t(10),
            transfer: TransferId(1),
        });
        tr.push(TraceRecord::CoreBusy {
            node: NodeId(0),
            core: CoreId(1),
            from: t(0),
            to: t(4),
            transfer: TransferId(1),
        });
        assert_eq!(
            tr.core_busy_within(NodeId(0), CoreId(0), t(0), t(100)),
            SimDuration::from_micros(10)
        );
        assert_eq!(
            tr.core_busy_within(NodeId(0), CoreId(1), t(0), t(100)),
            SimDuration::from_micros(4)
        );
    }
}
