//! A serially-occupied resource with busy-until tracking.
//!
//! Both simulated cores and simulated NICs are, at this granularity, serial
//! devices: a reservation occupies them for a window, later reservations
//! queue behind earlier ones. [`SerialResource`] centralizes the busy-until
//! arithmetic, total-occupancy accounting (for utilization reports) and the
//! generation counter used to drop stale idle notifications.

use nm_model::{SimDuration, SimTime};

/// A device that executes one reservation at a time.
#[derive(Debug, Clone)]
pub struct SerialResource {
    busy_until: SimTime,
    busy_total: SimDuration,
    /// Bumped on every reservation; an idle event carries the generation it
    /// was scheduled under and is dropped if the resource was re-busied.
    generation: u64,
}

impl SerialResource {
    /// A resource idle since the beginning of time.
    pub fn new() -> Self {
        SerialResource { busy_until: SimTime::ZERO, busy_total: SimDuration::ZERO, generation: 0 }
    }

    /// Earliest instant (not before `now`) at which the resource is free.
    pub fn free_at(&self, now: SimTime) -> SimTime {
        self.busy_until.max(now)
    }

    /// Instant the current reservation chain drains.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// True if the resource has no reservation covering `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Reserves the resource for `duration` starting no earlier than `start`
    /// and no earlier than the end of previous reservations. Returns the
    /// actual `(start, end)` window.
    pub fn reserve(&mut self, start: SimTime, duration: SimDuration) -> (SimTime, SimTime) {
        let begin = self.busy_until.max(start);
        let end = begin + duration;
        self.busy_until = end;
        self.busy_total += duration;
        self.generation += 1;
        (begin, end)
    }

    /// Undoes the most recent reservation: `prev_busy_until` is the value
    /// [`Self::busy_until`] held before that reservation and `duration` its
    /// length. The caller must guarantee the window is still the tail of
    /// the chain (nothing reserved after it). The generation is *not*
    /// bumped: the retracted window's own idle-check event stays current
    /// and reports the (now earlier) idle transition, conservatively late.
    pub fn retract(&mut self, prev_busy_until: SimTime, duration: SimDuration) {
        debug_assert!(prev_busy_until <= self.busy_until, "retract target beyond current chain");
        self.busy_until = prev_busy_until;
        self.busy_total -= duration;
    }

    /// Current generation (see type docs).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True when an idle event stamped with `generation` is still the latest
    /// word on this resource.
    pub fn idle_event_is_current(&self, generation: u64) -> bool {
        self.generation == generation
    }

    /// Cumulated reserved time — divide by elapsed time for utilization.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }
}

impl Default for SerialResource {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }
    fn d(us: u64) -> SimDuration {
        SimDuration::from_micros(us)
    }

    #[test]
    fn reservations_chain_fifo() {
        let mut r = SerialResource::new();
        let (s1, e1) = r.reserve(t(10), d(5));
        assert_eq!((s1, e1), (t(10), t(15)));
        // Submitted "now" but the device is busy: queues behind.
        let (s2, e2) = r.reserve(t(12), d(5));
        assert_eq!((s2, e2), (t(15), t(20)));
        // Submitted after a gap: starts immediately, gap not counted busy.
        let (s3, e3) = r.reserve(t(100), d(1));
        assert_eq!((s3, e3), (t(100), t(101)));
        assert_eq!(r.busy_total(), d(11));
    }

    #[test]
    fn idleness_and_free_at() {
        let mut r = SerialResource::new();
        assert!(r.is_idle(t(0)));
        assert_eq!(r.free_at(t(7)), t(7));
        r.reserve(t(0), d(10));
        assert!(!r.is_idle(t(5)));
        assert!(r.is_idle(t(10)));
        assert_eq!(r.free_at(t(5)), t(10));
        assert_eq!(r.free_at(t(30)), t(30));
    }

    #[test]
    fn retract_restores_the_previous_chain() {
        let mut r = SerialResource::new();
        r.reserve(t(0), d(10));
        let prev = r.busy_until();
        let (b, e) = r.reserve(t(0), d(5));
        assert_eq!((b, e), (t(10), t(15)));
        r.retract(prev, e - b);
        assert_eq!(r.busy_until(), t(10));
        assert_eq!(r.busy_total(), d(10));
        // A new reservation chains from the restored tail.
        let (b2, _) = r.reserve(t(0), d(3));
        assert_eq!(b2, t(10));
    }

    #[test]
    fn generations_invalidate_stale_idle_events() {
        let mut r = SerialResource::new();
        r.reserve(t(0), d(10));
        let gen_at_schedule = r.generation();
        assert!(r.idle_event_is_current(gen_at_schedule));
        r.reserve(t(2), d(10)); // re-busied: idle event at t=10 is stale
        assert!(!r.idle_event_is_current(gen_at_schedule));
    }
}
