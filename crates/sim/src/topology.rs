//! Cluster topology: nodes, cores and rails.
//!
//! The paper's testbed is two dual dual-core Opteron nodes with two rails
//! (Myri-10G + QsNetII); [`ClusterSpec::paper_testbed`] builds exactly that.
//! Every node owns one NIC per rail; rails are independent networks, so two
//! transfers on different rails never contend for wire resources — only for
//! host cores.

use nm_model::{builtin, LinkModel};

/// Shape of one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Number of cores. The paper's nodes have 4 (dual dual-core Opteron).
    pub cores: usize,
}

impl NodeSpec {
    /// The paper's node: dual dual-core Opteron, 4 cores.
    pub fn dual_dual_core_opteron() -> Self {
        NodeSpec { cores: 4 }
    }

    /// A node with `cores` cores.
    pub fn with_cores(cores: usize) -> Self {
        assert!(cores >= 1, "a node needs at least one core");
        NodeSpec { cores }
    }
}

/// Shape and performance of the whole cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Per-node shapes. All experiments in the paper use two identical nodes.
    pub nodes: Vec<NodeSpec>,
    /// One [`LinkModel`] per rail; rail `i` connects NIC `i` of every node.
    pub rails: Vec<LinkModel>,
}

impl ClusterSpec {
    /// Two dual dual-core Opterons joined by Myri-10G + QsNetII — the
    /// paper's evaluation platform (§IV).
    pub fn paper_testbed() -> Self {
        ClusterSpec {
            nodes: vec![NodeSpec::dual_dual_core_opteron(); 2],
            rails: builtin::paper_testbed(),
        }
    }

    /// Two nodes with `cores` cores each and the given rails.
    pub fn two_nodes(cores: usize, rails: Vec<LinkModel>) -> Self {
        ClusterSpec { nodes: vec![NodeSpec::with_cores(cores); 2], rails }
    }

    /// Validates structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.len() < 2 {
            return Err(format!("need at least 2 nodes, got {}", self.nodes.len()));
        }
        if self.rails.is_empty() {
            return Err("need at least one rail".into());
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.cores == 0 {
                return Err(format!("node {i} has zero cores"));
            }
        }
        Ok(())
    }

    /// Number of rails (== NICs per node).
    pub fn rail_count(&self) -> usize {
        self.rails.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let spec = ClusterSpec::paper_testbed();
        assert!(spec.validate().is_ok());
        assert_eq!(spec.nodes.len(), 2);
        assert_eq!(spec.nodes[0].cores, 4);
        assert_eq!(spec.rail_count(), 2);
        assert_eq!(spec.rails[0].name, "myri-10g");
        assert_eq!(spec.rails[1].name, "qsnet2");
    }

    #[test]
    fn validation_catches_degenerate_clusters() {
        let one_node =
            ClusterSpec { nodes: vec![NodeSpec::with_cores(4)], rails: builtin::paper_testbed() };
        assert!(one_node.validate().is_err());

        let no_rails = ClusterSpec { nodes: vec![NodeSpec::with_cores(4); 2], rails: vec![] };
        assert!(no_rails.validate().is_err());

        let zero_core = ClusterSpec {
            nodes: vec![NodeSpec { cores: 0 }, NodeSpec { cores: 4 }],
            rails: builtin::paper_testbed(),
        };
        assert!(zero_core.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn with_cores_rejects_zero() {
        let _ = NodeSpec::with_cores(0);
    }
}
