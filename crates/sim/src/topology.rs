//! **Network** topology: nodes, cores, rails and the switch fabric.
//!
//! Two modules in this workspace are called `topology`; they describe
//! different machines and must not be confused:
//!
//! * **This one** (`nm_sim::topology`, re-exported as [`nm_sim::net`]) is
//!   the *cluster interconnect*: which nodes exist, which rails each node
//!   has a NIC on, and what the shared switch backplane looks like.
//! * `nm_runtime::topology` is the *intra-node core hierarchy* (packages ×
//!   cores) used for tasklet placement. It never names rails or nodes.
//!
//! The paper's testbed is two dual dual-core Opteron nodes with two rails
//! (Myri-10G + QsNetII); [`ClusterSpec::paper_testbed`] builds exactly that.
//! By default every node owns one NIC per rail and rails are independent
//! contention-free networks (only NICs and host cores are resources) —
//! that is the 2-endpoint world all paper figures run in, and it is
//! preserved bit-identically. Two generalizations extend the model to
//! N-node clusters:
//!
//! * **Per-node rail sets** ([`NodeSpec::rails`]): a heterogeneous node may
//!   have NICs on only a subset of the rails. `None` keeps the historic
//!   "every rail" meaning.
//! * **A switch backplane** ([`SwitchSpec`]): each rail optionally gets one
//!   serially-occupied crossbar resource shared by *all* node pairs, so
//!   traffic between disjoint pairs contends the way it does on a real
//!   (oversubscribed) switch. `None` models ideal point-to-point cabling —
//!   the historic behaviour.

use nm_model::{builtin, LinkModel, SimDuration};

/// Shape of one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Number of cores. The paper's nodes have 4 (dual dual-core Opteron).
    pub cores: usize,
    /// Rail indices this node has a NIC on; `None` means *all* rails (the
    /// historic homogeneous meaning). Must be non-empty, sorted would be
    /// nice but is not required; out-of-range indices fail validation.
    pub rails: Option<Vec<usize>>,
}

impl NodeSpec {
    /// The paper's node: dual dual-core Opteron, 4 cores, NICs everywhere.
    pub fn dual_dual_core_opteron() -> Self {
        NodeSpec { cores: 4, rails: None }
    }

    /// A node with `cores` cores and a NIC on every rail.
    pub fn with_cores(cores: usize) -> Self {
        assert!(cores >= 1, "a node needs at least one core");
        NodeSpec { cores, rails: None }
    }

    /// Restricts the node's NICs to the given rail indices.
    pub fn on_rails(mut self, rails: Vec<usize>) -> Self {
        assert!(!rails.is_empty(), "a node needs at least one NIC");
        self.rails = Some(rails);
        self
    }

    /// Whether this node has a NIC on `rail` (given the cluster rail count).
    pub fn has_nic(&self, rail: usize) -> bool {
        match &self.rails {
            None => true,
            Some(rs) => rs.contains(&rail),
        }
    }
}

/// The shared switch backplane of one rail: a serial crossbar resource
/// every transfer on that rail crosses exactly once.
///
/// A transfer of `size` bytes occupies the backplane for
/// `port_latency_us + size / bytes_per_us` — with a backplane faster than
/// the link an uncontended transfer is never delayed (the crossing hides
/// inside the wire time), while concurrent transfers from *different* node
/// pairs queue, which no per-NIC resource can express.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchSpec {
    /// Fixed port-to-port forwarding latency, in microseconds.
    pub port_latency_us: f64,
    /// Backplane throughput in bytes per microsecond (MB/s).
    pub bytes_per_us: f64,
}

impl SwitchSpec {
    /// A switch with the given port latency and backplane bandwidth.
    // nm-analyzer: allow(unit-bare) -- spec-construction boundary: the
    // fields themselves are documented µs-f64/bytes-per-µs quantities
    pub fn new(port_latency_us: f64, bytes_per_us: f64) -> Self {
        assert!(
            port_latency_us >= 0.0 && port_latency_us.is_finite(),
            "port latency must be finite and non-negative"
        );
        assert!(
            bytes_per_us > 0.0 && bytes_per_us.is_finite(),
            "backplane bandwidth must be finite and positive"
        );
        SwitchSpec { port_latency_us, bytes_per_us }
    }

    /// A backplane provisioned at `factor ×` the given link's large-message
    /// bandwidth — `factor` ≥ the concurrent-pair count approximates a
    /// non-blocking crossbar; smaller factors model oversubscription.
    pub fn provisioned(link: &LinkModel, factor: f64) -> Self {
        assert!(factor > 0.0, "provisioning factor must be positive");
        // Large-message link bandwidth from the rendezvous table: bytes/us
        // at 4 MiB, the flattest point of the curve.
        let probe = 4 * 1024 * 1024u64;
        let bw = probe as f64 / link.rdv.time_us(probe);
        SwitchSpec::new(0.5, bw * factor)
    }

    /// How long one `size`-byte crossing occupies the backplane.
    pub fn transit(&self, size: u64) -> SimDuration {
        SimDuration::from_micros_f64(self.port_latency_us + size as f64 / self.bytes_per_us)
    }
}

/// Shape and performance of the whole cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Per-node shapes. All experiments in the paper use two identical nodes.
    pub nodes: Vec<NodeSpec>,
    /// One [`LinkModel`] per rail; rail `i` connects NIC `i` of every node
    /// that has one (see [`NodeSpec::rails`]).
    pub rails: Vec<LinkModel>,
    /// Per-rail switch backplane; `None` (the default everywhere in the
    /// paper reproduction) models ideal point-to-point cabling with no
    /// cross-pair contention.
    pub switch: Option<SwitchSpec>,
}

impl ClusterSpec {
    /// Two dual dual-core Opterons joined by Myri-10G + QsNetII — the
    /// paper's evaluation platform (§IV).
    pub fn paper_testbed() -> Self {
        ClusterSpec {
            nodes: vec![NodeSpec::dual_dual_core_opteron(); 2],
            rails: builtin::paper_testbed(),
            switch: None,
        }
    }

    /// Two nodes with `cores` cores each and the given rails.
    pub fn two_nodes(cores: usize, rails: Vec<LinkModel>) -> Self {
        ClusterSpec { nodes: vec![NodeSpec::with_cores(cores); 2], rails, switch: None }
    }

    /// `n` identical nodes with `cores` cores each and the given rails.
    pub fn homogeneous(n: usize, cores: usize, rails: Vec<LinkModel>) -> Self {
        assert!(n >= 2, "a cluster needs at least two nodes");
        ClusterSpec { nodes: vec![NodeSpec::with_cores(cores); n], rails, switch: None }
    }

    /// A heterogeneous demo cluster: `n` nodes cycling through 2/4/8-core
    /// shapes. Nodes keep NICs on every rail so all pairs stay routable;
    /// callers wanting partial rail sets use [`NodeSpec::on_rails`].
    pub fn heterogeneous(n: usize, rails: Vec<LinkModel>) -> Self {
        assert!(n >= 2, "a cluster needs at least two nodes");
        let shapes = [2usize, 4, 8];
        let nodes = (0..n).map(|i| NodeSpec::with_cores(shapes[i % shapes.len()])).collect();
        ClusterSpec { nodes, rails, switch: None }
    }

    /// Attaches a switch backplane to every rail.
    pub fn with_switch(mut self, switch: SwitchSpec) -> Self {
        self.switch = Some(switch);
        self
    }

    /// Validates structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.len() < 2 {
            return Err(format!("need at least 2 nodes, got {}", self.nodes.len()));
        }
        if self.rails.is_empty() {
            return Err("need at least one rail".into());
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.cores == 0 {
                return Err(format!("node {i} has zero cores"));
            }
            if let Some(rs) = &n.rails {
                if rs.is_empty() {
                    return Err(format!("node {i} has an empty rail set"));
                }
                for &r in rs {
                    if r >= self.rails.len() {
                        return Err(format!(
                            "node {i} names rail {r}, but only {} rails exist",
                            self.rails.len()
                        ));
                    }
                }
                let mut seen = rs.clone();
                seen.sort_unstable();
                seen.dedup();
                if seen.len() != rs.len() {
                    return Err(format!("node {i} lists a rail twice"));
                }
            }
        }
        Ok(())
    }

    /// Number of rails in the cluster (a node's NIC count may be smaller —
    /// see [`NodeSpec::rails`]).
    pub fn rail_count(&self) -> usize {
        self.rails.len()
    }

    /// Whether `node` has a NIC on `rail`.
    pub fn has_nic(&self, node: usize, rail: usize) -> bool {
        self.nodes.get(node).is_some_and(|n| n.has_nic(rail))
    }

    /// Rail indices both `src` and `dst` have NICs on, in ascending order —
    /// the rails a transfer between them may use.
    pub fn common_rails(&self, src: usize, dst: usize) -> Vec<usize> {
        (0..self.rails.len()).filter(|&r| self.has_nic(src, r) && self.has_nic(dst, r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let spec = ClusterSpec::paper_testbed();
        assert!(spec.validate().is_ok());
        assert_eq!(spec.nodes.len(), 2);
        assert_eq!(spec.nodes[0].cores, 4);
        assert_eq!(spec.rail_count(), 2);
        assert_eq!(spec.rails[0].name, "myri-10g");
        assert_eq!(spec.rails[1].name, "qsnet2");
        assert!(spec.switch.is_none(), "the paper's testbed has no modeled switch");
    }

    #[test]
    fn validation_catches_degenerate_clusters() {
        let one_node = ClusterSpec {
            nodes: vec![NodeSpec::with_cores(4)],
            rails: builtin::paper_testbed(),
            switch: None,
        };
        assert!(one_node.validate().is_err());

        let no_rails =
            ClusterSpec { nodes: vec![NodeSpec::with_cores(4); 2], rails: vec![], switch: None };
        assert!(no_rails.validate().is_err());

        let zero_core = ClusterSpec {
            nodes: vec![NodeSpec { cores: 0, rails: None }, NodeSpec::with_cores(4)],
            rails: builtin::paper_testbed(),
            switch: None,
        };
        assert!(zero_core.validate().is_err());
    }

    #[test]
    fn validation_checks_rail_sets() {
        let mut spec = ClusterSpec::paper_testbed();
        spec.nodes[0].rails = Some(vec![0, 7]);
        assert!(spec.validate().unwrap_err().contains("rail 7"));

        spec.nodes[0].rails = Some(vec![]);
        assert!(spec.validate().unwrap_err().contains("empty rail set"));

        spec.nodes[0].rails = Some(vec![1, 1]);
        assert!(spec.validate().unwrap_err().contains("twice"));

        spec.nodes[0].rails = Some(vec![1]);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn common_rails_intersects_nic_sets() {
        let mut spec = ClusterSpec::homogeneous(4, 4, builtin::paper_testbed());
        assert_eq!(spec.common_rails(0, 1), vec![0, 1]);
        spec.nodes[1].rails = Some(vec![1]);
        spec.nodes[2].rails = Some(vec![0]);
        assert_eq!(spec.common_rails(0, 1), vec![1]);
        assert_eq!(spec.common_rails(0, 2), vec![0]);
        assert_eq!(spec.common_rails(1, 2), Vec::<usize>::new());
        assert!(spec.has_nic(1, 1) && !spec.has_nic(1, 0));
    }

    #[test]
    fn heterogeneous_builder_gives_mixed_cores() {
        let spec = ClusterSpec::heterogeneous(8, builtin::paper_testbed());
        assert!(spec.validate().is_ok());
        assert_eq!(spec.nodes.len(), 8);
        let cores: Vec<usize> = spec.nodes.iter().map(|n| n.cores).collect();
        assert_eq!(cores, vec![2, 4, 8, 2, 4, 8, 2, 4]);
    }

    #[test]
    fn switch_transit_scales_with_size() {
        let sw = SwitchSpec::new(0.5, 1000.0);
        assert_eq!(sw.transit(0), SimDuration::from_micros_f64(0.5));
        let t = sw.transit(100_000).as_micros_f64();
        assert!((t - 100.5).abs() < 1e-9, "transit {t}");
        let fast = SwitchSpec::provisioned(&builtin::myri_10g(), 8.0);
        assert!(fast.transit(1024 * 1024) < builtin::myri_10g().rdv.time(1024 * 1024));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn with_cores_rejects_zero() {
        let _ = NodeSpec::with_cores(0);
    }
}
