#!/usr/bin/env bash
# Concurrency audit gate (invoked by ci.sh): every `unsafe`
# block/fn/impl must carry a `// SAFETY:` comment in the contiguous
# comment block directly above it (or on the line).
#
# The Relaxed-ordering and facade-bypass gates that used to live here as
# greps moved into nm-analyzer (`relaxed-ordering`, `facade-bypass`): its
# token-level scan skips comments and string literals, so prose mentioning
# `Ordering::Relaxed` no longer trips the build.
#
# Uses ripgrep when available, POSIX grep otherwise. Exits nonzero with a
# file:line listing on any violation.
set -euo pipefail
cd "$(dirname "$0")/.."

# search <ERE pattern> <path>... -> file:line:text matches in *.rs files
search() {
    local pat="$1"
    shift
    if command -v rg >/dev/null 2>&1; then
        rg -n --glob '*.rs' "$pat" "$@" || true
    else
        grep -rEn --include='*.rs' "$pat" "$@" || true
    fi
}

fail=0

# ---- gate 1: unsafe without SAFETY ------------------------------------
# Matches real unsafe introducers only; `unsafe_op_in_unsafe_fn` and
# `forbid(unsafe_code)` attributes do not match these patterns, and
# comment lines mentioning unsafe are filtered out.
while IFS=: read -r file line _; do
    [ -n "${file:-}" ] || continue
    # OK if SAFETY: is on the unsafe line itself, or anywhere in the run
    # of `//` comment lines immediately above it.
    if sed -n "${line}p" "$file" | grep -q "SAFETY:"; then
        continue
    fi
    # The awk reads its whole input (no early exit): under pipefail an
    # early exit would SIGPIPE the upstream sed and turn a pass into a
    # schedule-dependent 141 failure.
    if ! head -n $((line - 1)) "$file" | sed '1!G;h;$!d' \
        | awk 'BEGIN { active = 1 }
               active && !/^[[:space:]]*\/\// { active = 0 }
               active && /SAFETY:/ { found = 1 }
               END { exit !found }'; then
        echo "unsafe without // SAFETY: comment: $file:$line" >&2
        fail=1
    fi
done < <(search 'unsafe \{|unsafe fn |unsafe impl ' crates compat | grep -vE ':[[:space:]]*//' || true)

if [ "$fail" -ne 0 ]; then
    echo "concurrency lint FAILED" >&2
    exit 1
fi
echo "concurrency lint OK"
