#!/usr/bin/env bash
# Concurrency audit gates (invoked by ci.sh):
#
#   1. every `unsafe` block/fn/impl must carry a `// SAFETY:` comment in
#      the contiguous comment block directly above it (or on the line);
#   2. no bare `Ordering::Relaxed` in production crates — every atomic in
#      crates/*/src must state a stronger ordering (the facade's documented
#      protocols all need Acquire/Release pairing) or carry an explicit
#      `RELAXED-OK:` justification on the same or preceding line;
#   3. crates that must go through the `nm-sync` facade (runtime, core)
#      must not import `std::sync` or `parking_lot` directly — doing so
#      would silently bypass the loom model checks.
#
# Uses ripgrep when available, POSIX grep otherwise. Exits nonzero with a
# file:line listing on any violation.
set -euo pipefail
cd "$(dirname "$0")/.."

# search <ERE pattern> <path>... -> file:line:text matches in *.rs files
search() {
    local pat="$1"
    shift
    if command -v rg >/dev/null 2>&1; then
        rg -n --glob '*.rs' "$pat" "$@" || true
    else
        grep -rEn --include='*.rs' "$pat" "$@" || true
    fi
}

fail=0

# ---- gate 1: unsafe without SAFETY ------------------------------------
# Matches real unsafe introducers only; `unsafe_op_in_unsafe_fn` and
# `forbid(unsafe_code)` attributes do not match these patterns, and
# comment lines mentioning unsafe are filtered out.
while IFS=: read -r file line _; do
    [ -n "${file:-}" ] || continue
    # OK if SAFETY: is on the unsafe line itself, or anywhere in the run
    # of `//` comment lines immediately above it.
    if sed -n "${line}p" "$file" | grep -q "SAFETY:"; then
        continue
    fi
    # The awk reads its whole input (no early exit): under pipefail an
    # early exit would SIGPIPE the upstream sed and turn a pass into a
    # schedule-dependent 141 failure.
    if ! head -n $((line - 1)) "$file" | sed '1!G;h;$!d' \
        | awk 'BEGIN { active = 1 }
               active && !/^[[:space:]]*\/\// { active = 0 }
               active && /SAFETY:/ { found = 1 }
               END { exit !found }'; then
        echo "unsafe without // SAFETY: comment: $file:$line" >&2
        fail=1
    fi
done < <(search 'unsafe \{|unsafe fn |unsafe impl ' crates compat | grep -vE ':[[:space:]]*//' || true)

# ---- gate 2: bare Ordering::Relaxed in production code ----------------
while IFS=: read -r file line _; do
    [ -n "${file:-}" ] || continue
    start=$((line > 1 ? line - 1 : 1))
    if ! sed -n "${start},${line}p" "$file" | grep -q "RELAXED-OK:"; then
        echo "bare Ordering::Relaxed (justify with RELAXED-OK: or strengthen): $file:$line" >&2
        fail=1
    fi
done < <(search 'Ordering::Relaxed' crates/*/src)

# ---- gate 3: facade bypass in runtime/core ----------------------------
bypass=$(search 'std::sync::|parking_lot::' crates/runtime/src crates/core/src)
if [ -n "$bypass" ]; then
    echo "$bypass" >&2
    echo "direct std::sync/parking_lot use above: route through nm-sync instead" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "concurrency lint FAILED" >&2
    exit 1
fi
echo "concurrency lint OK"
