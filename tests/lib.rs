//! # nm-tests — cross-crate integration tests
//!
//! The tests live in `tests/` (one file per concern): figure-shape
//! assertions that pin the paper's qualitative results, the in-text
//! measurement reproductions, engine behaviour across strategies and
//! drivers, the sampling pipeline, and property-based workload tests.
//!
//! This library only hosts shared helpers.

use nm_core::driver::sim::SimDriver;
use nm_core::engine::Engine;
use nm_core::predictor::{Predictor, RailView};
use nm_core::strategy::{Strategy, StrategyKind};
use nm_model::TransferMode;
use nm_sampler::{sample_rail, SampleTransport, SamplingConfig, SimTransport};
use nm_sim::{ClusterSpec, RailId};

/// Samples `spec` into a predictor (natural + forced-eager per rail).
pub fn sample_predictor(spec: &ClusterSpec) -> Predictor {
    let mut sampler = SimTransport::new(spec.clone());
    let cfg = SamplingConfig { iters: 1, warmup: 0, ..Default::default() };
    let rails = (0..sampler.rail_count())
        .map(|i| {
            let natural = sample_rail(&mut sampler, i, &cfg).expect("sampling");
            let eager_cfg = SamplingConfig { mode: Some(TransferMode::Eager), ..cfg.clone() };
            let eager = sample_rail(&mut sampler, i, &eager_cfg).expect("sampling");
            RailView {
                rail: RailId(i),
                name: sampler.rail_name(i).into(),
                natural,
                eager,
                rdv_threshold: spec.rails[i].rdv_threshold,
            }
        })
        .collect();
    Predictor::new(rails)
}

/// A paper-testbed engine with the given strategy object.
pub fn paper_engine(strategy: Box<dyn Strategy>) -> Engine<SimDriver> {
    let spec = ClusterSpec::paper_testbed();
    let predictor = sample_predictor(&spec);
    Engine::new(SimDriver::new(spec), predictor, strategy).expect("engine")
}

/// A paper-testbed engine from a [`StrategyKind`].
pub fn paper_engine_kind(kind: StrategyKind) -> Engine<SimDriver> {
    paper_engine(kind.build())
}

/// One-way duration (µs) for one message of `size` under `kind`.
pub fn one_way_us(kind: StrategyKind, size: u64) -> f64 {
    let mut engine = paper_engine_kind(kind);
    let id = engine.post_send(size).expect("post");
    engine.wait(id).expect("wait").duration.as_micros_f64()
}

/// Bandwidth in MiB/s (paper Fig 8 unit).
pub fn bandwidth_mibps(kind: StrategyKind, size: u64) -> f64 {
    let us = one_way_us(kind, size);
    size as f64 / (1024.0 * 1024.0) / (us / 1e6)
}
