//! N-node cluster model properties: routing totality on heterogeneous rail
//! sets, exact switch accounting, and bit-identical 2-node behaviour.
//!
//! Three contracts of the cluster generalization (DESIGN.md §14):
//!
//! 1. **Routing totality** — on any topology where all nodes share a spine
//!    rail, every directed `(src, dst)` pair has a non-empty common-rail
//!    set *and* an engine over that pair actually delivers a message.
//! 2. **Switch accounting** — every transfer crossing a switched rail is
//!    charged exactly one transit window: after the calendar drains, the
//!    backplane's cumulative busy time equals the sum of per-transfer
//!    transits, to the nanosecond. No transfer double-books, none sneaks
//!    through free.
//! 3. **2-node equivalence** — a 2-node cluster driven through the N-node
//!    machinery (`SimCluster` + `PairDriver`, explicit per-node rail sets)
//!    produces the same completions as the legacy point-to-point
//!    `SimDriver`, bit for bit. The paper goldens (fig3/fig8/fig9 shape
//!    tests) therefore cannot move.

use nm_collectives::{Algorithm, Collectives, ProfileBank};
use nm_core::driver::cluster::SimCluster;
use nm_core::driver::sim::SimDriver;
use nm_core::engine::Engine;
use nm_core::strategy::StrategyKind;
use nm_model::builtin;
use nm_model::units::{KIB, MIB};
use nm_model::{SimDuration, TransferMode};
use nm_sim::{ClusterSpec, NodeId, NodeSpec, RailId, SendSpec, Simulator, SwitchSpec};
use nm_tests::sample_predictor;
use proptest::prelude::*;

/// A topology strategy: 8 nodes, each with a NIC on the spine rail and
/// (randomly) the other rail — so every pair is routable by construction.
fn spined_nodes(spine: usize) -> impl Strategy<Value = Vec<NodeSpec>> {
    proptest::collection::vec((2usize..=8, any::<bool>()), 8).prop_map(move |shapes| {
        shapes
            .into_iter()
            .map(|(cores, both)| {
                let rails = if both { vec![0, 1] } else { vec![spine] };
                NodeSpec::with_cores(cores).on_rails(rails)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Contract 1: totality. Every ordered pair shares at least the spine
    /// rail, the per-pair predictor lives in that dense local space, and a
    /// message between every adjacent pair is physically delivered.
    #[test]
    fn every_pair_routes_on_spined_heterogeneous_clusters(
        topo in (0usize..2).prop_flat_map(
            |spine| spined_nodes(spine).prop_map(move |nodes| (spine, nodes))),
    ) {
        let (spine, nodes) = topo;
        let spec = ClusterSpec {
            nodes,
            rails: builtin::paper_testbed(),
            switch: None,
        };
        prop_assert!(spec.validate().is_ok());
        let n = spec.nodes.len();
        let mut bank = ProfileBank::new(spec.clone());
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let common = spec.common_rails(src, dst);
                prop_assert!(!common.is_empty(), "{src}->{dst} must share the spine");
                prop_assert!(common.contains(&spine));
                let p = bank.predictor_for_pair(src, dst);
                prop_assert_eq!(p.rail_count(), common.len());
            }
        }
        // Delivery probe on a ring cover of the pairs (every node sends
        // and receives): the spine alone suffices to move real traffic.
        let cluster = SimCluster::new(spec.clone());
        for src in 0..n {
            let dst = (src + 1) % n;
            let mut engine = Engine::new(
                cluster.pair_driver(NodeId(src), NodeId(dst)),
                bank.predictor_for_pair(src, dst),
                StrategyKind::HeteroSplit.build(),
            )
            .expect("engine");
            let id = engine.post_send(64 * KIB).expect("post");
            let done = engine.wait(id).expect("wait");
            prop_assert!(done.duration > SimDuration::ZERO);
        }
    }

    /// Contract 2: exact switch accounting. Submit a random batch across
    /// pairs, rails, modes and sizes; drain; the backplane busy total of
    /// each rail equals the sum of that rail's transit windows exactly.
    #[test]
    fn switch_charges_exactly_one_transit_per_transfer(
        sends in proptest::collection::vec(
            (0usize..4, 0usize..2, 1u64..(2 * MIB), any::<bool>()), 1..16),
    ) {
        let switch = SwitchSpec::new(0.5, 2500.0);
        let spec = ClusterSpec::homogeneous(4, 4, builtin::paper_testbed())
            .with_switch(switch.clone());
        let mut sim = Simulator::new(spec);
        let mut expected = [SimDuration::ZERO; 2];
        for &(src, rail, size, eager) in &sends {
            let dst = (src + 1) % 4;
            let mut s = SendSpec::simple(NodeId(src), NodeId(dst), RailId(rail), size);
            if eager {
                s = s.with_mode(TransferMode::Eager);
            }
            sim.submit(s);
            expected[rail] += switch.transit(size);
        }
        while !sim.step().is_empty() {}
        for (rail, want) in expected.iter().enumerate() {
            prop_assert_eq!(
                sim.switch_busy_total(RailId(rail)),
                *want,
                "rail {} backplane time must be the exact transit sum",
                rail
            );
        }
    }
}

/// Contract 3: the N-node path is bit-identical to the legacy 2-node path
/// — same completion time, same per-rail chunk layout — across sizes
/// spanning eager, rendezvous and split regimes, with the cluster spec
/// exercising *explicit* per-node rail sets (`Some([0, 1])`, not the
/// historic `None`).
#[test]
fn two_node_cluster_path_matches_legacy_driver_bit_for_bit() {
    let legacy_spec = ClusterSpec::paper_testbed();
    let mut cluster_spec = ClusterSpec::paper_testbed();
    for node in &mut cluster_spec.nodes {
        node.rails = Some(vec![0, 1]);
    }

    for kind in [
        StrategyKind::SingleRail(Some(RailId(0))),
        StrategyKind::IsoSplit,
        StrategyKind::HeteroSplit,
    ] {
        for size in [4 * KIB, 32 * KIB, 256 * KIB, MIB, 8 * MIB] {
            let legacy = {
                let mut engine = Engine::new(
                    SimDriver::new(legacy_spec.clone()),
                    sample_predictor(&legacy_spec),
                    kind.build(),
                )
                .expect("engine");
                let id = engine.post_send(size).expect("post");
                engine.wait(id).expect("wait")
            };
            let clustered = {
                let cluster = SimCluster::new(cluster_spec.clone());
                let mut engine = Engine::new(
                    cluster.pair_driver(NodeId(0), NodeId(1)),
                    sample_predictor(&legacy_spec),
                    kind.build(),
                )
                .expect("engine");
                let id = engine.post_send(size).expect("post");
                engine.wait(id).expect("wait")
            };
            assert_eq!(
                legacy.delivered_at, clustered.delivered_at,
                "{kind:?} size {size}: delivery time must be bit-identical"
            );
            assert_eq!(legacy.duration, clustered.duration, "{kind:?} size {size}");
            assert_eq!(
                legacy.chunks, clustered.chunks,
                "{kind:?} size {size}: same split, same rails"
            );
        }
    }
}

/// A collective on ≥8 heterogeneous nodes end-to-end through the public
/// facade — the cross-crate smoke the satellite suite pins.
#[test]
fn collectives_complete_on_a_heterogeneous_eight_node_cluster() {
    let mut spec = ClusterSpec::heterogeneous(8, builtin::paper_testbed());
    // Two nodes lose a NIC each (opposite rails) — pairs between them
    // still route via the full-rail peers' spine.
    spec.nodes[2].rails = Some(vec![0, 1]);
    spec.nodes[5].rails = Some(vec![0, 1]);
    let mut c = Collectives::new(spec);
    let barrier = c.run_algorithm(Algorithm::BarrierTree, 1).expect("barrier");
    let bcast = c.run_algorithm(Algorithm::BcastTree, MIB).expect("bcast");
    assert!(barrier.measured_us > 0.0);
    assert!(bcast.measured_us > barrier.measured_us, "1 MiB bcast outweighs a token barrier");
}
