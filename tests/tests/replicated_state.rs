//! Multi-thread stress for the replicated decision path.
//!
//! Two layers:
//!
//! 1. **Raw replica races** — N worker threads run full `HeteroSplit`
//!    decisions off their own [`DecisionReader`] while a churn thread
//!    races health transitions and epoch bumps through the op log. The
//!    invariant under test is the staleness contract: a decision is made
//!    against one *coherent* replica read, so the plan may never use a
//!    rail that read said was unselectable, and the plan-cache epoch in
//!    the `Ctx` always matches that same read (no stale-epoch plan).
//!
//! 2. **Engine publication** — a seeded chaos run (rail outage →
//!    quarantine → probe ladder → readmission) on an engine with shared
//!    state enabled: after the stream drains, a fresh replica must agree
//!    with the engine's own authoritative facts (epoch, per-rail health,
//!    stat counters).

use nm_core::driver::faulty::FaultSimDriver;
use nm_core::engine::Engine;
use nm_core::replicated::{CounterKind, EngineOp, SharedDecisionState};
use nm_core::strategy::{Action, Ctx, StrategyKind};
use nm_core::{HealthConfig, RailState};
use nm_faults::{FaultKind, FaultSchedule, FaultSpec};
use nm_model::units::MIB;
use nm_model::{SimDuration, SimTime};
use nm_sim::{ClusterSpec, CoreId, RailId};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const WORKERS: usize = 4;
const CHURN_ROUNDS: u64 = 3_000;
const CHURNED_RAIL: RailId = RailId(1);

/// Health churn with the engine's invariant baked in: the selectable set
/// never changes without an epoch bump riding in the same batch.
fn churn_batch(round: u64) -> Vec<EngineOp> {
    match round % 8 {
        0 => vec![
            EngineOp::Health { rail: CHURNED_RAIL.0 as u8, state: RailState::Quarantined },
            EngineOp::EpochBump,
            EngineOp::Counter { kind: CounterKind::Quarantines, delta: 1 },
        ],
        4 => vec![
            EngineOp::Health { rail: CHURNED_RAIL.0 as u8, state: RailState::Healthy },
            EngineOp::EpochBump,
            EngineOp::Counter { kind: CounterKind::Readmissions, delta: 1 },
        ],
        r => vec![EngineOp::Feedback { rail: (r % 2) as u8, ewma_ratio: 1.0 + r as f64 * 0.01 }],
    }
}

#[test]
fn racing_workers_never_use_an_unselectable_rail_or_a_stale_epoch() {
    let spec = ClusterSpec::paper_testbed();
    let predictor = Arc::new(nm_tests::sample_predictor(&spec));
    let shared = SharedDecisionState::new(2);
    let stop = Arc::new(AtomicBool::new(false));
    let decisions = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..WORKERS)
        .map(|_| {
            let shared = shared.clone();
            let predictor = Arc::clone(&predictor);
            let stop = Arc::clone(&stop);
            let decisions = Arc::clone(&decisions);
            std::thread::spawn(move || {
                let mut reader = shared.reader();
                let mut strategy = StrategyKind::HeteroSplit.build();
                let queued = [4u64 << 20];
                let mut count = 0u64;
                while !stop.load(Ordering::Acquire) {
                    // One coherent read feeds the entire decision: the
                    // selectable mask, the waits, and the cache epoch all
                    // come from the same replica state.
                    let facts = reader.read();
                    let epoch = facts.epoch();
                    let churned_ok = facts.is_selectable(CHURNED_RAIL);
                    let mut waits = [0.0, 120.0];
                    facts.mask_unselectable(&mut waits);
                    let ctx = Ctx {
                        now: SimTime::ZERO,
                        predictor: &predictor,
                        rail_waits_us: &waits,
                        idle_cores: vec![CoreId(1), CoreId(2), CoreId(3)],
                        core_count: 4,
                        queued_sizes: &queued,
                        predictor_epoch: epoch,
                    };
                    match strategy.decide(&ctx) {
                        Action::Split(chunks) => {
                            for c in chunks.iter() {
                                assert!(
                                    c.rail != CHURNED_RAIL || churned_ok,
                                    "plan used rail {:?} which the replica read \
                                     (epoch {epoch}) said was unselectable",
                                    c.rail
                                );
                            }
                        }
                        Action::Aggregate { rail, .. } => {
                            assert!(rail != CHURNED_RAIL || churned_ok);
                        }
                        _ => {}
                    }
                    count += 1;
                }
                decisions.fetch_add(count, Ordering::AcqRel);
            })
        })
        .collect();

    let mut feedback_published = 0u64;
    let mut quarantines = 0u64;
    let mut readmissions = 0u64;
    for round in 0..CHURN_ROUNDS {
        let batch = churn_batch(round);
        for op in &batch {
            match op {
                EngineOp::Feedback { .. } => feedback_published += 1,
                EngineOp::Counter { kind: CounterKind::Quarantines, .. } => quarantines += 1,
                EngineOp::Counter { kind: CounterKind::Readmissions, .. } => readmissions += 1,
                _ => {}
            }
        }
        shared.publish_batch(&batch);
        if round % 16 == 0 {
            std::thread::yield_now();
        }
    }
    stop.store(true, Ordering::Release);
    for w in workers {
        w.join().expect("worker panicked (invariant violated)");
    }
    assert!(decisions.load(Ordering::Acquire) > 0, "workers made no decisions");

    // Conservation: a fresh replica that replays the full log agrees with
    // the master on every op-derived fact.
    let master = shared.snapshot();
    let mut reader = shared.reader();
    let replica = reader.read();
    assert_eq!(replica.epoch(), master.epoch());
    assert_eq!(replica.counter(CounterKind::Quarantines), quarantines);
    assert_eq!(replica.counter(CounterKind::Readmissions), readmissions);
    assert_eq!(replica.counter(CounterKind::FeedbackRecords), 0, "engine-only counter");
    let _ = feedback_published; // feedback ops overwrite, they don't count
    assert_eq!(replica.epoch(), quarantines + readmissions, "one bump per set change");
    for rail in 0..2u32 {
        assert_eq!(
            replica.rail_state(RailId(rail as usize)),
            master.rail_state(RailId(rail as usize))
        );
        assert!(
            (replica.ewma_ratio(RailId(rail as usize)) - master.ewma_ratio(RailId(rail as usize)))
                .abs()
                < f64::EPSILON
        );
    }
}

#[test]
fn engine_chaos_run_publishes_facts_replicas_agree_with() {
    let spec = ClusterSpec::paper_testbed();
    let predictor = nm_tests::sample_predictor(&spec);
    let schedule = FaultSchedule::new(42).with(FaultSpec {
        rail: RailId(0),
        at: SimTime::from_micros(2_000),
        kind: FaultKind::RailDown { duration: SimDuration::from_micros(10_000) },
    });
    let cfg = HealthConfig {
        max_probe_backoff: SimDuration::from_micros(2_000),
        ..HealthConfig::default()
    };
    let mut engine = Engine::new(
        FaultSimDriver::new(spec, schedule),
        predictor,
        StrategyKind::HeteroSplit.build(),
    )
    .expect("engine")
    .with_fault_tolerance(cfg)
    .expect("health config")
    .with_shared_state();

    for _ in 0..40 {
        let id = engine.post_send(MIB).expect("post");
        engine.wait(id).expect("message survives the outage");
    }

    let stats = engine.stats().clone();
    assert!(stats.quarantines >= 1, "outage must quarantine the rail");
    assert!(stats.readmissions >= 1, "probe ladder must readmit it");

    // A replica spun up after the fact replays the whole run's ops and
    // must land exactly on the engine's authoritative view.
    let shared = engine.shared_state().expect("enabled").clone();
    let mut reader = shared.reader();
    let facts = reader.read();
    assert_eq!(facts.epoch(), engine.predictor_epoch(), "replica epoch tracks plan cache");
    let health = engine.health().expect("enabled");
    for rail in [RailId(0), RailId(1)] {
        assert_eq!(facts.rail_state(rail), health.state(rail), "rail {rail:?} health");
        assert_eq!(facts.is_selectable(rail), health.is_selectable(rail));
    }
    assert_eq!(facts.counter(CounterKind::Quarantines), stats.quarantines);
    assert_eq!(facts.counter(CounterKind::Readmissions), stats.readmissions);
    assert_eq!(facts.counter(CounterKind::ProbesSent), stats.probes_sent);
    assert!(facts.counter(CounterKind::FeedbackRecords) > 0, "deliveries feed the EWMA");
}
