//! The adaptive loop: stale profiles → systematic prediction error →
//! drift detection → feedback correction → recovered split quality.
//!
//! This is the operational extension of the paper's sampling design: the
//! startup profile is a snapshot, and the engine can tell when reality
//! disagrees with it.

use nm_core::driver::sim::SimDriver;
use nm_core::engine::Engine;
use nm_core::strategy::StrategyKind;
use nm_model::units::MIB;
use nm_sim::{ClusterSpec, RailId};
use nm_tests::sample_predictor;

fn degraded_testbed(factor: f64) -> ClusterSpec {
    let mut spec = ClusterSpec::paper_testbed();
    spec.rails[1] = spec.rails[1].degraded(factor).expect("valid");
    spec
}

#[test]
fn accurate_profiles_show_no_drift() {
    let spec = ClusterSpec::paper_testbed();
    let mut engine = Engine::new(
        SimDriver::new(spec.clone()),
        sample_predictor(&spec),
        StrategyKind::HeteroSplit.build(),
    )
    .expect("engine");
    for _ in 0..10 {
        let id = engine.post_send(2 * MIB).expect("post");
        engine.wait(id).expect("wait");
    }
    let fb = engine.feedback();
    assert!(fb.rail(RailId(0)).count >= 10);
    assert!(
        fb.rail(RailId(0)).mean_abs_rel_err < 0.02,
        "fresh profiles should predict within 2%: {fb:?}"
    );
    assert!(!fb.drift_detected(0.10, 5));
}

#[test]
fn stale_profiles_trigger_drift_and_correction_recovers() {
    // Profiles sampled on the healthy cluster; hardware degraded to 25%.
    let healthy = ClusterSpec::paper_testbed();
    let degraded = degraded_testbed(0.25);
    let mut engine = Engine::new(
        SimDriver::new(degraded.clone()),
        sample_predictor(&healthy),
        StrategyKind::HeteroSplit.build(),
    )
    .expect("engine");

    // Phase 1: run with stale knowledge, record the damage.
    let mut stale_us = 0.0;
    for _ in 0..12 {
        let id = engine.post_send(2 * MIB).expect("post");
        stale_us = engine.wait(id).expect("wait").duration.as_micros_f64();
    }
    assert!(
        engine.feedback().rail(RailId(1)).mean_signed_rel_err > 0.5,
        "degraded rail must show systematic underprediction: {:?}",
        engine.feedback().rail(RailId(1))
    );
    assert!(engine.feedback().drift_detected(0.25, 5), "drift must be detected");

    // Phase 2: adopt the correction; splits shift off the slow rail.
    engine.adopt_feedback_correction();
    let mut corrected_us = 0.0;
    let mut last_chunks = Vec::new();
    for _ in 0..4 {
        let id = engine.post_send(2 * MIB).expect("post");
        let done = engine.wait(id).expect("wait");
        corrected_us = done.duration.as_micros_f64();
        last_chunks = done.chunks;
    }
    assert!(
        corrected_us < stale_us * 0.75,
        "correction should recover >25%: stale {stale_us:.0}us, corrected {corrected_us:.0}us"
    );
    // The degraded rail now carries a minority share (or none).
    let slow_share = last_chunks
        .iter()
        .find(|c| c.0 == RailId(1))
        .map(|c| c.1 as f64 / (2.0 * MIB as f64))
        .unwrap_or(0.0);
    assert!(slow_share < 0.30, "slow rail still carries {:.0}%", slow_share * 100.0);
}

#[test]
fn correction_converges_toward_resampled_quality() {
    let healthy = ClusterSpec::paper_testbed();
    let degraded = degraded_testbed(0.25);

    // Gold standard: profiles re-sampled on the degraded cluster.
    let mut resampled = Engine::new(
        SimDriver::new(degraded.clone()),
        sample_predictor(&degraded),
        StrategyKind::HeteroSplit.build(),
    )
    .expect("engine");
    let id = resampled.post_send(4 * MIB).expect("post");
    let gold = resampled.wait(id).expect("wait").duration.as_micros_f64();

    // Feedback path: stale profiles + two correction rounds.
    let mut adaptive = Engine::new(
        SimDriver::new(degraded),
        sample_predictor(&healthy),
        StrategyKind::HeteroSplit.build(),
    )
    .expect("engine");
    for round in 0..2 {
        for _ in 0..12 {
            let id = adaptive.post_send(4 * MIB).expect("post");
            adaptive.wait(id).expect("wait");
        }
        let _ = round;
        adaptive.adopt_feedback_correction();
    }
    let id = adaptive.post_send(4 * MIB).expect("post");
    let corrected = adaptive.wait(id).expect("wait").duration.as_micros_f64();
    assert!(
        corrected < gold * 1.25,
        "feedback correction ({corrected:.0}us) should approach re-sampling ({gold:.0}us)"
    );
}
