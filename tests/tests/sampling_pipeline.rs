//! The full sampling pipeline: benchmark → profile → disk → predictor →
//! decisions, exactly as NewMadeleine initializes (paper §III-C).

use nm_core::predictor::{Predictor, RailView};
use nm_model::TransferMode;
use nm_sampler::store::{load_profile, save_all};
use nm_sampler::{sample_all_rails, sample_rail, SamplingConfig, SimTransport};
use nm_sim::{ClusterSpec, RailId};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nm_tests_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sample_save_load_rebuild_predictor() {
    let spec = ClusterSpec::paper_testbed();
    let mut sampler = SimTransport::new(spec.clone());
    let cfg = SamplingConfig { iters: 1, warmup: 0, ..Default::default() };
    let profiles = sample_all_rails(&mut sampler, &cfg).expect("sampling");

    // Persist like NewMadeleine's sampling directory, then reload.
    let dir = tmpdir("pipeline");
    save_all(&dir, &profiles).expect("save");
    let rails: Vec<RailView> = spec
        .rails
        .iter()
        .enumerate()
        .map(|(i, link)| {
            let natural = load_profile(&dir, &link.name).expect("load").expect("present");
            RailView {
                rail: RailId(i),
                name: link.name.as_str().into(),
                eager: natural.clone(),
                natural,
                rdv_threshold: link.rdv_threshold,
            }
        })
        .collect();
    let predictor = Predictor::new(rails);

    // The reloaded predictor must make the same headline decision: a 4 MiB
    // message splits with Myri carrying ~58%.
    let split = nm_core::selection::select_rails(
        &predictor.natural_cost(),
        &[(RailId(0), 0.0), (RailId(1), 0.0)],
        4 << 20,
        2,
    );
    assert_eq!(split.assignments.len(), 2);
    let myri = split.assignments.iter().find(|a| a.0 == RailId(0)).unwrap().1;
    let share = myri as f64 / (4 << 20) as f64;
    assert!((share - 0.58).abs() < 0.03, "myri share {share:.3}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn noisy_sampling_still_drives_sane_splits() {
    // 5% measurement noise: the split ratio moves a little but stays sane,
    // and completions remain near-equal under the *true* model.
    let spec = ClusterSpec::paper_testbed();
    let mut sampler = SimTransport::new(spec.clone()).with_jitter(0.05, 99);
    let cfg = SamplingConfig { iters: 5, warmup: 1, ..Default::default() };
    let profiles = sample_all_rails(&mut sampler, &cfg).expect("sampling");
    let rails: Vec<RailView> = profiles
        .into_iter()
        .enumerate()
        .map(|(i, p)| RailView {
            rail: RailId(i),
            name: p.name().into(),
            eager: p.clone(),
            natural: p,
            rdv_threshold: spec.rails[i].rdv_threshold,
        })
        .collect();
    let predictor = Predictor::new(rails);
    let split = nm_core::selection::select_rails(
        &predictor.natural_cost(),
        &[(RailId(0), 0.0), (RailId(1), 0.0)],
        4 << 20,
        2,
    );
    let myri = split.assignments.iter().find(|a| a.0 == RailId(0)).unwrap().1;
    let share = myri as f64 / (4 << 20) as f64;
    assert!((0.50..=0.66).contains(&share), "noisy share {share:.3}");
}

#[test]
fn forced_mode_sampling_differs_beyond_the_threshold() {
    let mut sampler = SimTransport::paper_testbed();
    let cfg = SamplingConfig { iters: 1, warmup: 0, ..Default::default() };
    let natural = sample_rail(&mut sampler, 0, &cfg).unwrap();
    let eager_cfg = SamplingConfig { mode: Some(TransferMode::Eager), ..cfg };
    let eager = sample_rail(&mut sampler, 0, &eager_cfg).unwrap();
    // Below the threshold the curves agree; far above they diverge (eager
    // keeps paying PIO bandwidth).
    assert!((natural.predict_us(16 << 10) - eager.predict_us(16 << 10)).abs() < 0.5);
    assert!(eager.predict_us(8 << 20) > natural.predict_us(8 << 20) * 1.2);
}

#[test]
fn engine_decisions_change_with_cluster_performance() {
    // Same engine code, different cluster: on a homogeneous pair the split
    // is 50/50; on the paper pair it is ~58/42.
    use nm_model::builtin;
    let homogeneous = ClusterSpec::two_nodes(
        4,
        vec![builtin::qsnet2(), {
            let mut m = builtin::qsnet2();
            m.name = "qsnet2-b".into();
            m
        }],
    );
    let p = nm_tests::sample_predictor(&homogeneous);
    let split = nm_core::selection::select_rails(
        &p.natural_cost(),
        &[(RailId(0), 0.0), (RailId(1), 0.0)],
        4 << 20,
        2,
    );
    let share = split.assignments[0].1 as f64 / (4 << 20) as f64;
    assert!((share - 0.5).abs() < 0.02, "homogeneous share {share:.3}");
}
