//! Property-based validation of the discrete-event simulator: for random
//! workloads, resources never double-book, time never runs backwards, and
//! every transfer is delivered exactly once at a physically possible time.

use nm_model::units::MIB;
use nm_model::{SimDuration, TransferMode};
use nm_sim::trace::TraceRecord;
use nm_sim::{ClusterSpec, CoreId, NodeId, RailId, SendSpec, SimEvent, Simulator};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct RandomSend {
    rail: usize,
    size: u64,
    send_core: usize,
    recv_core: usize,
    force_eager: bool,
    offload_us: u64,
}

fn random_send() -> impl Strategy<Value = RandomSend> {
    (0usize..2, 1u64..(2 * MIB), 0usize..4, 0usize..4, any::<bool>(), 0u64..10).prop_map(
        |(rail, size, send_core, recv_core, force_eager, offload_us)| RandomSend {
            rail,
            size,
            send_core,
            recv_core,
            force_eager,
            offload_us,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn random_workloads_respect_physics(sends in proptest::collection::vec(random_send(), 1..24)) {
        let mut sim = Simulator::new(ClusterSpec::paper_testbed()).with_trace();
        let ids: Vec<_> = sends
            .iter()
            .map(|s| {
                let mut spec = SendSpec::simple(
                    NodeId(0),
                    NodeId(1),
                    RailId(s.rail),
                    s.size,
                )
                .on_core(CoreId(s.send_core))
                .recv_on_core(CoreId(s.recv_core))
                .with_offload_delay(SimDuration::from_micros(s.offload_us));
                if s.force_eager {
                    spec = spec.with_mode(TransferMode::Eager);
                }
                sim.submit(spec)
            })
            .collect();

        // Time is monotone across events; every transfer delivers once.
        let mut last = nm_model::SimTime::ZERO;
        let mut deliveries: HashMap<_, u32> = HashMap::new();
        loop {
            let events = sim.step();
            if events.is_empty() {
                break;
            }
            for ev in events {
                let at = match ev {
                    SimEvent::RtsArrived { at, .. }
                    | SimEvent::SendDone { at, .. }
                    | SimEvent::Delivered { at, .. }
                    | SimEvent::NicIdle { at, .. }
                    | SimEvent::CoreIdle { at, .. }
                    | SimEvent::Wakeup { at, .. } => at,
                };
                prop_assert!(at >= last, "event time went backwards");
                last = at;
                if let SimEvent::Delivered { transfer, .. } = ev {
                    *deliveries.entry(transfer).or_insert(0) += 1;
                }
            }
        }
        for id in &ids {
            prop_assert_eq!(deliveries.get(id), Some(&1), "transfer {} deliveries", id);
        }

        // Per-transfer sanity: start >= submit (+offload), delivery after
        // start, and duration at least the uncontended one-way time.
        for (send, id) in sends.iter().zip(&ids) {
            let t = sim.transfer(*id);
            let started = t.started_at.expect("started");
            let delivered = t.delivered_at.expect("delivered");
            prop_assert!(
                started >= t.submitted_at + SimDuration::from_micros(send.offload_us)
            );
            prop_assert!(delivered > started);
            let link = &sim.spec().rails[send.rail];
            let floor = if send.force_eager {
                link.one_way_us_in_mode(send.size, TransferMode::Eager)
            } else {
                link.one_way_us(send.size)
            }
            .get();
            let got = delivered.saturating_since(started).as_micros_f64();
            // 10ns tolerance: durations are rounded to nanoseconds.
            prop_assert!(
                got + 0.01 >= floor,
                "transfer {} faster than physics: {got} < {floor}", id
            );
        }

        // No resource double-books: per (node, resource), busy windows from
        // the trace must not overlap.
        let mut windows: HashMap<String, Vec<(u64, u64)>> = HashMap::new();
        for rec in sim.trace().records() {
            match *rec {
                TraceRecord::NicBusy { node, rail, from, to, .. } => {
                    windows
                        .entry(format!("{node}/{rail}"))
                        .or_default()
                        .push((from.as_nanos(), to.as_nanos()));
                }
                TraceRecord::CoreBusy { node, core, from, to, .. } => {
                    windows
                        .entry(format!("{node}/{core}"))
                        .or_default()
                        .push((from.as_nanos(), to.as_nanos()));
                }
                TraceRecord::Delivered { .. } => {}
            }
        }
        for (resource, mut w) in windows {
            w.sort_unstable();
            for pair in w.windows(2) {
                prop_assert!(
                    pair[0].1 <= pair[1].0,
                    "{resource} double-booked: {:?} overlaps {:?}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    /// Determinism: the same workload replays to identical timings.
    #[test]
    fn simulation_is_deterministic(sends in proptest::collection::vec(random_send(), 1..12)) {
        let run = || {
            let mut sim = Simulator::new(ClusterSpec::paper_testbed());
            let ids: Vec<_> = sends
                .iter()
                .map(|s| {
                    sim.submit(
                        SendSpec::simple(NodeId(0), NodeId(1), RailId(s.rail), s.size)
                            .on_core(CoreId(s.send_core))
                            .recv_on_core(CoreId(s.recv_core)),
                    )
                })
                .collect();
            sim.run_until_idle();
            ids.iter().map(|&i| sim.transfer(i).delivered_at.unwrap()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
