//! Reproduction of the paper's in-text measurements (§IV-A, §III-D).

use nm_core::strategy::StrategyKind;
use nm_model::units::{KIB, MIB};
use nm_sim::{ClusterSpec, NodeId, RailId, SendSpec, Simulator};
use nm_tests::paper_engine_kind;

/// §IV-A iso-split: "a 2 MB chunk of message is sent over Myri-10G in
/// approximately 1730 µs while another 2 MB chunk is sent through Quadrics
/// in 2400 µs. The Myri-10G network is thus unused for 670 µs."
#[test]
fn iso_split_chunk_times_and_idle_gap() {
    let mut sim = Simulator::new(ClusterSpec::paper_testbed()).with_trace();
    let a = sim.submit(SendSpec::simple(NodeId(0), NodeId(1), RailId(0), 2 * MIB));
    let b = sim.submit(SendSpec::simple(NodeId(0), NodeId(1), RailId(1), 2 * MIB));
    sim.run_until_idle();
    let myri_us = sim.transfer(a).delivered_at.unwrap().as_micros_f64();
    let quad_us = sim.transfer(b).delivered_at.unwrap().as_micros_f64();
    assert!((myri_us - 1730.0).abs() / 1730.0 < 0.10, "myri 2MB: {myri_us:.0}us");
    assert!((quad_us - 2400.0).abs() / 2400.0 < 0.10, "quadrics 2MB: {quad_us:.0}us");
    let gap = quad_us - myri_us;
    assert!((gap - 670.0).abs() < 200.0, "idle gap {gap:.0}us vs paper 670us");
}

/// §IV-A hetero-split: "a 2437 KB chunk ... through Myri-10G in 1999 µs
/// whereas a 1757 KB chunk is sent over Quadrics in 2001 µs."
#[test]
fn hetero_split_chunk_sizes_and_balance() {
    let mut engine = paper_engine_kind(StrategyKind::HeteroSplit);
    let id = engine.post_send(4 * MIB).expect("post");
    let done = engine.wait(id).expect("wait");
    assert_eq!(done.chunks.len(), 2);
    let myri_kib = done.chunks.iter().find(|c| c.0 == RailId(0)).unwrap().1 / KIB;
    let quad_kib = done.chunks.iter().find(|c| c.0 == RailId(1)).unwrap().1 / KIB;
    // Paper: 2437 / 1757 KB. Accept 5% on the split point.
    assert!(
        (myri_kib as f64 - 2437.0).abs() / 2437.0 < 0.05,
        "myri chunk {myri_kib} KiB vs paper 2437"
    );
    assert!(
        (quad_kib as f64 - 1757.0).abs() / 1757.0 < 0.05,
        "quadrics chunk {quad_kib} KiB vs paper 1757"
    );
    // Both chunk transfers end nearly together: verify by replaying the
    // layout directly on a simulator.
    let mut sim = Simulator::new(ClusterSpec::paper_testbed());
    let ids: Vec<_> = done
        .chunks
        .iter()
        .map(|&(r, b)| sim.submit(SendSpec::simple(NodeId(0), NodeId(1), r, b)))
        .collect();
    sim.run_until_idle();
    let ends: Vec<f64> =
        ids.iter().map(|&i| sim.transfer(i).delivered_at.unwrap().as_micros_f64()).collect();
    let spread = (ends[0] - ends[1]).abs();
    let max_end = ends[0].max(ends[1]);
    assert!(spread / max_end < 0.02, "chunk completions {ends:?} differ by more than 2%");
    // And the completion is within 10% of the paper's ~2000us.
    assert!((max_end - 2000.0).abs() / 2000.0 < 0.10, "completion {max_end:.0}us");
}

/// §IV-A: hetero-split's whole-message time beats iso-split's.
#[test]
fn hetero_beats_iso_on_the_4mb_message() {
    let iso = nm_tests::one_way_us(StrategyKind::IsoSplit, 4 * MIB);
    let hetero = nm_tests::one_way_us(StrategyKind::HeteroSplit, 4 * MIB);
    assert!(hetero < iso, "hetero {hetero:.0}us vs iso {iso:.0}us");
    // Paper: ~2400us -> ~2000us, a ~17% improvement. Demand >= 10%.
    assert!(1.0 - hetero / iso > 0.10, "improvement only {:.1}%", (1.0 - hetero / iso) * 100.0);
}

/// §III-D: the offload cost constants used by the simulator and strategy
/// are the paper's 3 µs / 6 µs.
#[test]
fn offload_constants_match_the_paper() {
    let m = nm_core::strategy::multicore::MulticoreEager::new();
    assert_eq!(m.offload_us, 3.0);
    assert_eq!(m.preempt_us, 6.0);
}
