//! Property-based workload tests: random message mixes through every
//! strategy must conserve messages and bytes, never deadlock, and respect
//! basic physics (nothing completes faster than the best single rail's
//! latency).

use nm_core::strategy::StrategyKind;
use nm_tests::paper_engine_kind;
use proptest::prelude::*;

fn strategy_kind() -> impl proptest::strategy::Strategy<Value = StrategyKind> {
    prop_oneof![
        Just(StrategyKind::SingleRail(None)),
        Just(StrategyKind::GreedyBalance),
        Just(StrategyKind::IsoSplit),
        Just(StrategyKind::RatioSplit),
        Just(StrategyKind::HeteroSplit),
        Just(StrategyKind::Aggregation),
        Just(StrategyKind::MulticoreEager),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_workloads_complete_exactly_once(
        kind in strategy_kind(),
        sizes in proptest::collection::vec(1u64..(4 << 20), 1..12),
    ) {
        let mut engine = paper_engine_kind(kind);
        let ids: Vec<_> = sizes
            .iter()
            .map(|&s| engine.post_send(s).expect("post"))
            .collect();
        let done = engine.drain().expect("drain");
        prop_assert_eq!(done.len(), ids.len());

        // Conservation: every message completed once, bytes add up.
        let mut seen: Vec<_> = done.iter().map(|c| c.id).collect();
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len(), ids.len(), "duplicate completions");
        prop_assert_eq!(
            done.iter().map(|c| c.size).sum::<u64>(),
            sizes.iter().sum::<u64>()
        );

        // Physics: no message completes before the fastest rail's latency,
        // and chunk layouts tile each message exactly.
        for c in &done {
            prop_assert!(c.duration.as_micros_f64() >= 1.0,
                "{:?} completed impossibly fast: {:?}", c.id, c.duration);
            prop_assert_eq!(c.chunks.iter().map(|x| x.1).sum::<u64>(), c.size);
            prop_assert!(c.delivered_at >= c.posted_at);
        }
    }

    #[test]
    fn hetero_is_never_much_worse_than_single_rail(
        sizes in proptest::collection::vec(1u64..(4 << 20), 1..6),
    ) {
        // For a one-at-a-time workload, hetero-split's completion must not
        // exceed the dynamic single-rail baseline by more than prediction
        // error allows (10%): it can always fall back to one rail.
        for &size in &sizes {
            let mut single = paper_engine_kind(StrategyKind::SingleRail(None));
            let id = single.post_send(size).expect("post");
            let t_single = single.wait(id).expect("wait").duration.as_micros_f64();

            let mut hetero = paper_engine_kind(StrategyKind::HeteroSplit);
            let id = hetero.post_send(size).expect("post");
            let t_hetero = hetero.wait(id).expect("wait").duration.as_micros_f64();

            prop_assert!(t_hetero <= t_single * 1.10 + 1.0,
                "size {size}: hetero {t_hetero:.1}us vs single {t_single:.1}us");
        }
    }
}
