//! End-to-end integrity and overload protection, driven entirely through
//! the public [`Engine`] API over the two-rail paper testbed.
//!
//! * A deterministic corruption storm (payload + header corruption,
//!   duplication, a reorder window) over both rails: every message must
//!   still complete, detected corruption must be retried, and the whole
//!   run must replay bit-identically.
//! * Admission control: `try_post_send` rejects at the pending caps with a
//!   typed backpressure reason, deadline-aware shedding removes exactly
//!   the queued messages that aged out, and `cancel` racing a shed of the
//!   same message yields exactly one terminal outcome.
//! * Hysteresis-guarded degradation: a deep backlog flips the engine to
//!   the static-ratio fallback and it recovers once drained.

use nm_core::driver::faulty::FaultSimDriver;
use nm_core::driver::sim::SimDriver;
use nm_core::engine::{Engine, EngineStats, MsgId};
use nm_core::strategy::StrategyKind;
use nm_core::{AdmissionConfig, Backpressure, EngineError, HealthConfig};
use nm_faults::{FaultKind, FaultSchedule, FaultSpec};
use nm_model::units::{KIB, MIB};
use nm_model::{SimDuration, SimTime};
use nm_sim::{ClusterSpec, RailId};

const MSGS: usize = 30;
const MSG_BYTES: u64 = 256 * KIB;

/// All four corruption-class faults across both rails, plus a reorder
/// window on the slower rail.
fn storm_schedule() -> FaultSchedule {
    let long = SimDuration::from_micros(1_000_000);
    FaultSchedule::new(7)
        .with(FaultSpec {
            rail: RailId(0),
            at: SimTime::from_micros(1),
            kind: FaultKind::PayloadCorrupt { prob: 0.10, duration: long },
        })
        .with(FaultSpec {
            rail: RailId(1),
            at: SimTime::from_micros(1),
            kind: FaultKind::HeaderCorrupt { prob: 0.05, duration: long },
        })
        .with(FaultSpec {
            rail: RailId(0),
            at: SimTime::from_micros(1),
            kind: FaultKind::DuplicateChunk { prob: 0.10, duration: long },
        })
        .with(FaultSpec {
            rail: RailId(1),
            at: SimTime::from_micros(2_000),
            kind: FaultKind::ChunkReorderStorm { duration: SimDuration::from_micros(1_500) },
        })
}

fn chaos_engine(schedule: FaultSchedule) -> Engine<FaultSimDriver> {
    let spec = ClusterSpec::paper_testbed();
    let predictor = nm_tests::sample_predictor(&spec);
    Engine::new(FaultSimDriver::new(spec, schedule), predictor, StrategyKind::HeteroSplit.build())
        .expect("engine")
        .with_fault_tolerance(HealthConfig::default())
        .expect("health config")
}

/// Runs the storm stream once; returns per-message completion instants and
/// the final stats.
fn run_storm() -> (Vec<f64>, EngineStats) {
    let mut engine = chaos_engine(storm_schedule());
    let mut completions = Vec::with_capacity(MSGS);
    for _ in 0..MSGS {
        let id = engine.post_send(MSG_BYTES).expect("post");
        let done = engine.wait(id).expect("every message must survive the storm");
        assert_eq!(done.size, MSG_BYTES);
        completions.push(done.delivered_at.as_micros_f64());
    }
    (completions, engine.stats().clone())
}

#[test]
fn corruption_storm_completes_every_message_and_counts_faults() {
    let (times, stats) = run_storm();
    assert_eq!(stats.msgs_completed, MSGS as u64);
    assert_eq!(stats.bytes_completed, MSGS as u64 * MSG_BYTES);
    assert!(stats.corrupt_chunks > 0, "storm must corrupt something: {stats:?}");
    assert!(stats.duplicate_chunks_dropped > 0, "duplicates must be recognized: {stats:?}");
    assert!(stats.retries >= stats.corrupt_chunks, "every corrupt chunk is retried: {stats:?}");
    // Detected corruption charges the rail's health, like any loss.
    assert!(stats.rail_failures.iter().sum::<u64>() > 0);
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "completions move forward in time");
}

#[test]
fn corruption_storm_replays_bit_identically() {
    assert_eq!(run_storm(), run_storm(), "same schedule, same seed => same run");
}

#[test]
fn empty_schedule_keeps_integrity_counters_at_zero() {
    let mut engine = chaos_engine(FaultSchedule::empty());
    for _ in 0..5 {
        let id = engine.post_send(MSG_BYTES).expect("post");
        engine.wait(id).expect("wait");
    }
    let s = engine.stats();
    assert_eq!(
        (s.corrupt_chunks, s.duplicate_chunks_dropped, s.retries, s.chunks_failed),
        (0, 0, 0, 0),
        "an empty schedule must be inert: {s:?}"
    );
}

fn sim_engine_with(cfg: AdmissionConfig) -> Engine<SimDriver> {
    let spec = ClusterSpec::paper_testbed();
    let predictor = nm_tests::sample_predictor(&spec);
    Engine::new(SimDriver::new(spec), predictor, StrategyKind::HeteroSplit.build())
        .expect("engine")
        .with_admission_control(cfg)
        .expect("admission config")
}

#[test]
fn try_post_send_rejects_at_the_message_cap() {
    let mut engine =
        sim_engine_with(AdmissionConfig { max_pending_msgs: 4, ..AdmissionConfig::default() });
    let ids: Vec<MsgId> =
        (0..4).map(|_| engine.try_post_send(MSG_BYTES).expect("under cap")).collect();
    match engine.try_post_send(MSG_BYTES) {
        Err(EngineError::Backpressure(Backpressure::MsgCap { pending, cap })) => {
            assert_eq!((pending, cap), (4, 4));
        }
        other => panic!("expected MsgCap backpressure, got {other:?}"),
    }
    assert_eq!(engine.stats().backpressure_rejections, 1);
    for id in ids {
        engine.wait(id).expect("accepted messages complete");
    }
    // Completion releases the budget: the cap opens again.
    engine.try_post_send(MSG_BYTES).expect("cap released after drain");
    assert_eq!(engine.admission_pending(), Some((1, MSG_BYTES)));
}

#[test]
fn try_post_send_rejects_at_the_byte_cap() {
    let mut engine =
        sim_engine_with(AdmissionConfig { max_pending_bytes: MIB, ..AdmissionConfig::default() });
    let id = engine.try_post_send(800 * KIB).expect("under cap");
    match engine.try_post_send(512 * KIB) {
        Err(EngineError::Backpressure(Backpressure::ByteCap { pending, requested, cap })) => {
            assert_eq!((pending, requested, cap), (800 * KIB, 512 * KIB, MIB));
        }
        other => panic!("expected ByteCap backpressure, got {other:?}"),
    }
    engine.wait(id).expect("wait");
    engine.try_post_send(512 * KIB).expect("bytes released");
}

/// Blacks out both rails so queued messages cannot be scheduled, which is
/// the only way a deadline can expire while a message is still queued.
fn blackout_schedule(duration_us: u64) -> FaultSchedule {
    let down = |rail| FaultSpec {
        rail,
        at: SimTime::from_micros(10),
        kind: FaultKind::RailDown { duration: SimDuration::from_micros(duration_us) },
    };
    FaultSchedule::new(11).with(down(RailId(0))).with(down(RailId(1)))
}

fn blackout_engine(duration_us: u64, cfg: AdmissionConfig) -> Engine<FaultSimDriver> {
    let spec = ClusterSpec::paper_testbed();
    let predictor = nm_tests::sample_predictor(&spec);
    let health = HealthConfig {
        quarantine_after: 1,
        max_probe_backoff: SimDuration::from_micros(2_000),
        ..HealthConfig::default()
    };
    Engine::new(
        FaultSimDriver::new(spec, blackout_schedule(duration_us)),
        predictor,
        StrategyKind::HeteroSplit.build(),
    )
    .expect("engine")
    .with_fault_tolerance(health)
    .expect("health config")
    .with_admission_control(cfg)
    .expect("admission config")
}

/// Polls until virtual time reaches `until_us`. Bounded, because a poll
/// that only processes same-instant events does not advance the clock.
fn advance_to<T: nm_core::Transport>(engine: &mut Engine<T>, until_us: u64) {
    for _ in 0..10_000 {
        if engine.now() >= SimTime::from_micros(until_us) {
            return;
        }
        let _ = engine.poll().expect("poll");
    }
    panic!("simulation made no progress toward {until_us} us");
}

#[test]
fn deadline_shedding_removes_exactly_the_expired_queued_messages() {
    let mut engine = blackout_engine(5_000, AdmissionConfig::default());
    // A first message draws the rails into quarantine (its chunks fail at
    // the blackout), so everything after it stays queued.
    let pioneer = engine.post_send(MSG_BYTES).expect("post");
    advance_to(&mut engine, 500);
    let with_deadline: Vec<MsgId> = (0..3)
        .map(|_| {
            engine
                .post_send_with_deadline(MSG_BYTES, SimDuration::from_micros(1_500))
                .expect("post")
        })
        .collect();
    let unbounded = engine.post_send(MSG_BYTES).expect("post");
    // Run past every deadline (posted ~500 us + 1500 us), still inside the
    // blackout: the shed pass must fire while the messages are queued.
    advance_to(&mut engine, 3_000);
    assert_eq!(engine.stats().msgs_shed, 3, "exactly the deadline posts shed");
    for id in &with_deadline {
        match engine.wait(*id) {
            Err(EngineError::Shed(got)) => assert_eq!(got, id.0),
            other => panic!("expected Shed for {id:?}, got {other:?}"),
        }
    }
    // The survivors complete once the blackout lifts and probes readmit.
    let done = engine.drain().expect("drain skips shed messages");
    let done_ids: Vec<MsgId> = done.iter().map(|c| c.id).collect();
    assert!(done_ids.contains(&pioneer), "pre-blackout message survives");
    assert!(done_ids.contains(&unbounded), "deadline-less message survives");
    assert_eq!(done.len(), 2);
}

#[test]
fn deadlines_require_admission_control() {
    let spec = ClusterSpec::paper_testbed();
    let predictor = nm_tests::sample_predictor(&spec);
    let mut engine =
        Engine::new(SimDriver::new(spec), predictor, StrategyKind::HeteroSplit.build())
            .expect("engine");
    assert!(matches!(
        engine.post_send_with_deadline(MSG_BYTES, SimDuration::from_micros(100)),
        Err(EngineError::Config(_))
    ));
}

#[test]
fn cancel_beats_the_shed_pass_with_one_terminal_outcome() {
    let mut engine = blackout_engine(5_000, AdmissionConfig::default());
    let pioneer = engine.post_send(MSG_BYTES).expect("post");
    advance_to(&mut engine, 500);
    let doomed =
        engine.post_send_with_deadline(MSG_BYTES, SimDuration::from_micros(1_500)).expect("post");
    // Cancel while still queued, before any poll lets the deadline pass.
    assert!(engine.cancel(doomed).expect("cancel"), "queued messages are removable");
    let _ = engine.drain().expect("drain");
    let s = engine.stats();
    assert_eq!((s.cancelled, s.msgs_shed), (1, 0), "cancel won: no shed outcome");
    assert!(matches!(engine.wait(doomed), Err(EngineError::UnknownMessage(_))));
    engine.wait(pioneer).expect_err("already claimed by drain");
}

#[test]
fn shed_beats_cancel_with_one_terminal_outcome() {
    let mut engine = blackout_engine(5_000, AdmissionConfig::default());
    let _pioneer = engine.post_send(MSG_BYTES).expect("post");
    advance_to(&mut engine, 500);
    let doomed =
        engine.post_send_with_deadline(MSG_BYTES, SimDuration::from_micros(1_500)).expect("post");
    advance_to(&mut engine, 4_000); // the shed pass fires first
    assert!(!engine.cancel(doomed).expect("cancel"), "already shed: nothing to cancel");
    let s = engine.stats();
    assert_eq!((s.msgs_shed, s.cancelled), (1, 0), "shed won: no cancel outcome");
    assert!(matches!(engine.wait(doomed), Err(EngineError::Shed(_))));
}

#[test]
fn deep_backlog_degrades_to_ratio_split_and_recovers() {
    let mut engine = sim_engine_with(AdmissionConfig {
        degrade_enter_backlog: 4,
        degrade_exit_backlog: 1,
        ..AdmissionConfig::default()
    });
    // Batch-post so the strategy sees the whole backlog at once.
    let ids = engine.post_send_batch(&[MSG_BYTES; 10]).expect("batch");
    // Backlogs seen per kick iteration: 10, 9, ..., 1. Degradation latches
    // at 10 (>= 4) and recovers at 1 (<= 1): one flip each way, and every
    // decision in between comes from the fallback.
    let s = engine.stats();
    assert_eq!(s.degrade_transitions, 2, "{s:?}");
    assert_eq!(s.degraded_decisions, 9, "{s:?}");
    assert!(!engine.is_degraded(), "recovered after the backlog drained");
    for id in ids {
        engine.wait(id).expect("degraded decisions still deliver");
    }
    assert_eq!(engine.stats().msgs_completed, 10);
}
