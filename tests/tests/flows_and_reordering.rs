//! Tagged flows and queue reordering: NewMadeleine's "reordering"
//! optimization changes wire order while every flow is still *released* to
//! the application in posted order.

use nm_core::strategy::StrategyKind;
use nm_model::units::{KIB, MIB};
use nm_tests::paper_engine_kind;

#[test]
fn shortest_first_reorders_the_wire_but_not_the_flow() {
    let mut engine = paper_engine_kind(StrategyKind::ShortestFirst);
    // A big message followed by a tiny one, same tag. SJF puts the tiny
    // one on the wire first...
    let ids = engine.post_send_batch(&[4 * MIB, 2 * KIB]).expect("post");
    let done = engine.drain().expect("drain");
    assert!(engine.stats().promotes >= 1, "{:?}", engine.stats());
    let big = done.iter().find(|c| c.id == ids[0]).unwrap();
    let small = done.iter().find(|c| c.id == ids[1]).unwrap();
    // Physical completion: the small one was wired first, so its recorded
    // delivery is earlier even though release order is by flow (drain
    // returned it *after* the big one).
    assert!(small.delivered_at < big.delivered_at);
    let pos_big = done.iter().position(|c| c.id == ids[0]).unwrap();
    let pos_small = done.iter().position(|c| c.id == ids[1]).unwrap();
    assert!(pos_big < pos_small, "flow release order must follow posting");
}

#[test]
fn wait_on_a_held_message_blocks_until_flow_order_allows() {
    let mut engine = paper_engine_kind(StrategyKind::ShortestFirst);
    let ids = engine.post_send_batch(&[4 * MIB, 2 * KIB]).expect("post");
    // Waiting on the *small* (second-posted) message must also complete
    // the big one first internally — wait() returns only after release.
    let small = engine.wait(ids[1]).expect("wait small");
    // By the time the small message is released, the big one is retrievable
    // without further polling.
    let big = engine.try_completion(ids[0]).expect("big released first");
    assert!(big.delivered_at >= small.delivered_at);
}

#[test]
fn different_tags_release_independently() {
    let mut engine = paper_engine_kind(StrategyKind::SingleRail(None));
    // Tag 1 gets a long message, tag 2 a short one; tag 2 must not be
    // held hostage by tag 1.
    let long = engine.post_send_tagged(8 * MIB, 1).expect("post");
    let short = engine.post_send_tagged(4 * KIB, 2).expect("post");
    let short_done = engine.wait(short).expect("wait short");
    assert_eq!(short_done.tag, 2);
    // The long transfer is still in flight when the short one releases.
    let long_done = engine.wait(long).expect("wait long");
    assert!(long_done.delivered_at > short_done.delivered_at);
}

#[test]
fn many_interleaved_tags_all_release_in_per_tag_order() {
    let mut engine = paper_engine_kind(StrategyKind::ShortestFirst);
    let mut ids = Vec::new();
    for round in 0..5u64 {
        for tag in 0..3u32 {
            // Alternate large/small so SJF has something to promote.
            let size = if (round + tag as u64).is_multiple_of(2) { 512 * KIB } else { 8 * KIB };
            ids.push((tag, engine.post_send_tagged(size, tag).expect("post")));
        }
    }
    let done = engine.drain().expect("drain");
    assert_eq!(done.len(), ids.len());
    // Completions queried per tag come back with non-decreasing ids —
    // i.e. posted order within the tag.
    for tag in 0..3u32 {
        let tagged: Vec<_> = done.iter().filter(|c| c.tag == tag).collect();
        assert_eq!(tagged.len(), 5);
        for w in tagged.windows(2) {
            assert!(w[0].id < w[1].id, "tag {tag} released out of posted order");
        }
    }
}

#[test]
fn small_messages_gain_latency_under_sjf() {
    // The point of reordering: a small message stuck behind a big one.
    let measure = |kind: StrategyKind| {
        let mut engine = paper_engine_kind(kind);
        let ids = engine.post_send_batch(&[8 * MIB, 4 * KIB]).expect("post");
        // Use physical delivery time of the small message.
        engine.drain().expect("drain").iter().find(|c| c.id == ids[1]).unwrap().delivered_at
    };
    let fifo = measure(StrategyKind::HeteroSplit);
    let sjf = measure(StrategyKind::ShortestFirst);
    assert!(
        sjf.as_micros_f64() < fifo.as_micros_f64() / 5.0,
        "sjf {} should slash the small message's wire latency vs fifo {}",
        sjf,
        fifo
    );
}
