//! The composite paper strategy must be at-or-near the best specialist in
//! every regime — that is the point of composing them.

use nm_core::strategy::StrategyKind;
use nm_model::units::{KIB, MIB};
use nm_tests::{one_way_us, paper_engine_kind};

#[test]
fn composite_matches_hetero_on_rendezvous_sizes() {
    for size in [MIB, 4 * MIB] {
        let hetero = one_way_us(StrategyKind::HeteroSplit, size);
        let paper = one_way_us(StrategyKind::Paper, size);
        assert!(
            (paper - hetero).abs() / hetero < 0.01,
            "size {size}: paper {paper:.0} vs hetero {hetero:.0}"
        );
    }
}

#[test]
fn composite_matches_multicore_on_medium_eager_sizes() {
    for size in [16 * KIB, 64 * KIB] {
        let multicore = one_way_us(StrategyKind::MulticoreEager, size);
        let paper = one_way_us(StrategyKind::Paper, size);
        assert!(
            (paper - multicore).abs() / multicore < 0.01,
            "size {size}: paper {paper:.0} vs multicore {multicore:.0}"
        );
    }
}

#[test]
fn composite_aggregates_small_bursts() {
    let mut engine = paper_engine_kind(StrategyKind::Paper);
    engine.post_send_batch(&[512; 8]).expect("post");
    engine.drain().expect("drain");
    let stats = engine.stats();
    assert_eq!(stats.msgs_aggregated, 8, "{stats:?}");
    assert_eq!(stats.packs_submitted, 1, "{stats:?}");
}

#[test]
fn composite_never_loses_badly_to_any_specialist() {
    // Across a size sweep the composite stays within 10% of the best
    // specialist (it IS one of them per regime, modulo dispatch boundaries).
    let specialists = [
        StrategyKind::SingleRail(None),
        StrategyKind::HeteroSplit,
        StrategyKind::MulticoreEager,
        StrategyKind::Aggregation,
    ];
    for size in [256u64, 4 * KIB, 32 * KIB, 256 * KIB, 2 * MIB] {
        let best = specialists.iter().map(|&k| one_way_us(k, size)).fold(f64::INFINITY, f64::min);
        let paper = one_way_us(StrategyKind::Paper, size);
        assert!(
            paper <= best * 1.10 + 0.5,
            "size {size}: paper {paper:.1}us vs best specialist {best:.1}us"
        );
    }
}

#[test]
fn composite_handles_a_mixed_workload_end_to_end() {
    let mut engine = paper_engine_kind(StrategyKind::Paper);
    let sizes = [128u64, 512, 8 * KIB, 64 * KIB, 2 * MIB, 300, 100 * KIB];
    engine.post_send_batch(&sizes).expect("post");
    let done = engine.drain().expect("drain");
    assert_eq!(done.len(), sizes.len());
    let stats = engine.stats();
    assert_eq!(stats.bytes_completed, sizes.iter().sum::<u64>());
    // The mixed workload exercises all three paths.
    assert!(stats.packs_submitted >= 1, "aggregation path unused: {stats:?}");
    assert!(stats.chunks_submitted > sizes.len() as u64 - 2, "split paths unused: {stats:?}");
}
