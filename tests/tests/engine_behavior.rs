//! Engine behaviour across strategies: queueing, deferral, aggregation,
//! completion accounting, and strategy-to-wire consistency.

use nm_core::engine::Engine;
use nm_core::strategy::{Action, ChunkPlan, Ctx, Strategy, StrategyKind};
use nm_model::units::{KIB, MIB};
use nm_sim::RailId;
use nm_tests::{paper_engine, paper_engine_kind};

#[test]
fn every_builtin_strategy_completes_a_mixed_workload() {
    let sizes = [64u64, 4 * KIB, 100 * KIB, 2 * MIB, 512, 64 * KIB];
    for kind in StrategyKind::all() {
        let mut engine = paper_engine_kind(kind);
        let ids: Vec<_> = sizes.iter().map(|&s| engine.post_send(s).expect("post")).collect();
        let done = engine.drain().expect("drain");
        assert_eq!(done.len(), ids.len(), "{kind:?} lost messages");
        let stats = engine.stats();
        assert_eq!(stats.msgs_completed, sizes.len() as u64, "{kind:?}");
        assert_eq!(stats.bytes_completed, sizes.iter().sum::<u64>(), "{kind:?}");
    }
}

#[test]
fn greedy_defers_until_a_nic_frees_up() {
    let mut engine = paper_engine_kind(StrategyKind::GreedyBalance);
    // Three messages, two rails: the third must defer at least once.
    for _ in 0..3 {
        engine.post_send(MIB).expect("post");
    }
    let done = engine.drain().expect("drain");
    assert_eq!(done.len(), 3);
    assert!(engine.stats().defers >= 1, "stats: {:?}", engine.stats());
}

#[test]
fn completions_report_the_actual_chunk_layout() {
    let mut engine = paper_engine_kind(StrategyKind::HeteroSplit);
    let id = engine.post_send(4 * MIB).expect("post");
    let done = engine.wait(id).expect("wait");
    let total: u64 = done.chunks.iter().map(|c| c.1).sum();
    assert_eq!(total, 4 * MIB, "chunks must tile the message");
    let rails: std::collections::HashSet<_> = done.chunks.iter().map(|c| c.0).collect();
    assert_eq!(rails.len(), done.chunks.len(), "one chunk per rail");
}

#[test]
fn rail_byte_accounting_matches_layouts() {
    let mut engine = paper_engine_kind(StrategyKind::HeteroSplit);
    let ids: Vec<_> = (0..4).map(|_| engine.post_send(MIB).expect("post")).collect();
    let mut per_rail = vec![0u64; 2];
    for id in ids {
        for (rail, bytes) in engine.wait(id).expect("wait").chunks {
            per_rail[rail.index()] += bytes;
        }
    }
    assert_eq!(engine.stats().rail_bytes, per_rail);
}

#[test]
fn a_malformed_strategy_plan_is_rejected() {
    /// Covers only half the message: must be refused.
    #[derive(Debug)]
    struct Broken;
    impl Strategy for Broken {
        fn name(&self) -> &'static str {
            "broken"
        }
        fn decide(&mut self, ctx: &Ctx<'_>) -> Action {
            Action::single(ChunkPlan::new(RailId(0), ctx.head_size() / 2))
        }
    }
    let mut engine: Engine<_> = paper_engine(Box::new(Broken));
    let err = engine.post_send(1024).unwrap_err();
    assert!(matches!(err, nm_core::EngineError::BadPlan(_)), "{err}");
}

#[test]
fn unknown_rail_in_plan_is_rejected() {
    #[derive(Debug)]
    struct BadRail;
    impl Strategy for BadRail {
        fn name(&self) -> &'static str {
            "bad-rail"
        }
        fn decide(&mut self, ctx: &Ctx<'_>) -> Action {
            Action::single(ChunkPlan::new(RailId(7), ctx.head_size()))
        }
    }
    let mut engine: Engine<_> = paper_engine(Box::new(BadRail));
    assert!(engine.post_send(1024).is_err());
}

#[test]
fn zero_byte_messages_are_refused() {
    let mut engine = paper_engine_kind(StrategyKind::HeteroSplit);
    assert!(engine.post_send(0).is_err());
}

#[test]
fn waiting_twice_on_the_same_message_fails_cleanly() {
    let mut engine = paper_engine_kind(StrategyKind::HeteroSplit);
    let id = engine.post_send(1024).expect("post");
    let _ = engine.wait(id).expect("first wait");
    let err = engine.wait(id).unwrap_err();
    assert!(matches!(err, nm_core::EngineError::UnknownMessage(_)));
}

#[test]
fn fifo_messages_on_one_rail_complete_in_post_order() {
    let mut engine = paper_engine_kind(StrategyKind::SingleRail(Some(RailId(0))));
    let ids: Vec<_> = (0..5).map(|_| engine.post_send(64 * KIB).expect("post")).collect();
    let mut last = nm_model::SimTime::ZERO;
    for id in ids {
        let done = engine.wait(id).expect("wait");
        assert!(done.delivered_at >= last, "reordered on a FIFO rail");
        last = done.delivered_at;
    }
}

#[test]
fn cancelling_a_queued_message_frees_the_flow() {
    // Greedy on 2 rails: the third message stays queued and can be
    // cancelled; the flow must not stall on its sequence number.
    let mut engine = paper_engine_kind(StrategyKind::GreedyBalance);
    let ids: Vec<_> = (0..4).map(|_| engine.post_send(MIB).expect("post")).collect();
    assert!(engine.cancel(ids[2]).expect("cancel"), "third message still queued");
    assert!(!engine.cancel(ids[0]).expect("cancel"), "first message already on a rail");
    let done = engine.drain().expect("drain");
    assert_eq!(done.len(), 3, "cancelled message never completes");
    assert!(done.iter().all(|c| c.id != ids[2]));
    assert_eq!(engine.stats().cancelled, 1);
    // Waiting on the cancelled id errors out cleanly.
    assert!(matches!(engine.wait(ids[2]), Err(nm_core::EngineError::UnknownMessage(_))));
}

#[test]
fn cancelling_an_inflight_message_releases_reserved_rail_time() {
    use nm_core::Transport;
    // Single rail: the second message's chunk is submitted behind the
    // first and has not started moving — cancel must retract it and give
    // the reserved rail time back.
    let mut engine = paper_engine_kind(StrategyKind::SingleRail(Some(RailId(0))));
    let first = engine.post_send(4 * MIB).expect("post");
    let busy_after_first = engine.transport().rail_busy_until(RailId(0));
    let second = engine.post_send(4 * MIB).expect("post");
    assert!(
        engine.transport().rail_busy_until(RailId(0)) > busy_after_first,
        "second message reserves rail time"
    );
    assert!(engine.cancel(second).expect("cancel"), "unstarted transfer is retractable");
    assert_eq!(
        engine.transport().rail_busy_until(RailId(0)),
        busy_after_first,
        "cancel must release the reserved rail time"
    );
    let done = engine.drain().expect("drain");
    assert_eq!(done.len(), 1, "only the first message completes");
    assert_eq!(done[0].id, first);
    assert_eq!(engine.stats().cancelled, 1);
    assert!(matches!(engine.wait(second), Err(nm_core::EngineError::UnknownMessage(_))));
}

#[test]
fn multicore_eager_beats_single_rail_for_medium_messages() {
    let single = nm_tests::one_way_us(StrategyKind::SingleRail(None), 64 * KIB);
    let multi = nm_tests::one_way_us(StrategyKind::MulticoreEager, 64 * KIB);
    assert!(
        multi < single * 0.75,
        "multicore {multi:.1}us should be >25% under single {single:.1}us"
    );
}

#[test]
fn multicore_eager_matches_single_rail_for_tiny_messages() {
    let single = nm_tests::one_way_us(StrategyKind::SingleRail(None), 256);
    let multi = nm_tests::one_way_us(StrategyKind::MulticoreEager, 256);
    assert!((multi - single).abs() < 0.5, "tiny: multi {multi:.2} vs single {single:.2}");
}
