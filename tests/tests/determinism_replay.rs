//! Double-run replay determinism (DESIGN.md §17).
//!
//! The determinism-taint lane proves no hash-order iteration, wall-clock
//! read, or ambient randomness reaches the sim/collectives/engine roots;
//! the BTreeMap conversions behind it removed every sorted-drain
//! workaround in the runner and fault drivers. This test is the dynamic
//! witness for that static claim: the worst chaos scenario in the suite —
//! an 8-node barrier losing a node mid-operation plus a neighbour's NIC
//! port — executed twice in the same process must produce byte-identical
//! results, down to the rendered debug text of every hop, delivery time,
//! and repair counter. Two fresh worlds, same seed: any surviving
//! iteration-order dependence shows up as a diff here.

use nm_collectives::{Algorithm, CollectiveCluster, ProfileBank, RunResult};
use nm_faults::{ClusterFaultSchedule, ClusterFaultSpec, FaultKind};
use nm_model::builtin;
use nm_model::{SimDuration, SimTime};
use nm_sim::{ClusterSpec, RailId};

fn chaos_run(seed: u64) -> RunResult {
    let forever = SimDuration::from_micros(10_000_000);
    let schedule = ClusterFaultSchedule::new(seed)
        .with(ClusterFaultSpec::node_down(5, SimTime::from_micros(1), forever))
        .with(ClusterFaultSpec::port(
            4,
            RailId(0),
            SimTime::from_micros(1),
            FaultKind::RailDown { duration: forever },
        ));
    let spec = ClusterSpec::homogeneous(8, 4, builtin::paper_testbed());
    let mut cc = CollectiveCluster::with_faults(spec.clone(), &schedule).expect("cluster");
    let mut bank = ProfileBank::new(spec);
    let dag = Algorithm::BarrierTree.dag(8, 1);
    cc.run(&mut bank, &dag).expect("barrier completes on the survivors")
}

#[test]
fn seeded_chaos_replay_is_byte_identical() {
    let first = chaos_run(42);
    let second = chaos_run(42);

    // Field-by-field first, for a readable diff when something drifts.
    assert_eq!(first.started_at, second.started_at);
    assert_eq!(first.finished_at, second.finished_at);
    assert_eq!(first.duration_us.to_bits(), second.duration_us.to_bits());
    assert_eq!(first.deliveries, second.deliveries);
    assert_eq!(first.hops.len(), second.hops.len());
    assert_eq!(first.stats, second.stats);

    // Then the whole structure: the rendered form covers every hop and
    // repair graft in order, so equal strings mean equal executions.
    assert_eq!(format!("{first:?}"), format!("{second:?}"));

    // The scenario must actually exercise the repair machinery — a clean
    // barrier replaying identically would prove nothing about the fault
    // ledgers and repair queues this test exists to pin.
    assert_eq!(first.stats.dead_nodes, 1, "node 5 is down at quiescence");
    assert!(first.stats.repairs >= 1, "stats: {:?}", first.stats);
    assert!(first.hops.len() > Algorithm::BarrierTree.dag(8, 1).hops.len(), "repair hops grafted");
}

/// Different seeds build different fault-event interleavings; the replay
/// guarantee is per-world, not a constant answer.
#[test]
fn replay_determinism_is_seed_scoped() {
    let a = chaos_run(42);
    let b = chaos_run(43);
    assert_eq!(format!("{a:?}"), format!("{:?}", chaos_run(42)));
    assert_eq!(format!("{b:?}"), format!("{:?}", chaos_run(43)));
}
