//! Figure 3 shape assertions: greedy balancing of eager packets loses to
//! aggregating on one network, across the whole 4 B – 16 KB sweep.

use nm_core::engine::Engine;
use nm_core::strategy::{Action, Ctx, Strategy, StrategyKind};
use nm_model::units::{pow2_sizes, KIB};
use nm_sim::RailId;
use nm_tests::paper_engine;

/// Fig 3's per-rail aggregated series: everything packed on one fixed rail.
#[derive(Debug, Clone)]
struct AggregateOn(RailId);

impl Strategy for AggregateOn {
    fn name(&self) -> &'static str {
        "aggregate-on-fixed-rail"
    }
    fn decide(&mut self, ctx: &Ctx<'_>) -> Action {
        Action::Aggregate { count: ctx.queued_sizes.len(), rail: self.0 }
    }
}

fn batch_completion_us(strategy: Box<dyn Strategy>, sizes: &[u64]) -> f64 {
    let mut engine: Engine<_> = paper_engine(strategy);
    engine.post_send_batch(sizes).expect("post batch");
    engine
        .drain()
        .expect("drain")
        .iter()
        .map(|c| c.delivered_at.as_micros_f64())
        .fold(0.0, f64::max)
}

#[test]
fn balancing_two_eager_segments_never_wins() {
    for total in pow2_sizes(4, 16 * KIB) {
        let seg = (total / 2).max(1);
        let segments = [seg, seg];
        let myri = batch_completion_us(Box::new(AggregateOn(RailId(0))), &segments);
        let quad = batch_completion_us(Box::new(AggregateOn(RailId(1))), &segments);
        let balanced = batch_completion_us(StrategyKind::GreedyBalance.build(), &segments);
        let best = myri.min(quad);
        assert!(
            balanced > best,
            "total {total}: balanced {balanced:.2}us beat aggregation {best:.2}us"
        );
    }
}

#[test]
fn balancing_penalty_is_substantial_for_tiny_packets() {
    // At 4 B the paper's gap is large; demand at least 15%.
    let segments = [2u64, 2];
    let myri = batch_completion_us(Box::new(AggregateOn(RailId(0))), &segments);
    let quad = batch_completion_us(Box::new(AggregateOn(RailId(1))), &segments);
    let balanced = batch_completion_us(StrategyKind::GreedyBalance.build(), &segments);
    let best = myri.min(quad);
    assert!(balanced / best > 1.15, "penalty only {:.2}x", balanced / best);
}

#[test]
fn the_aggregation_strategy_actually_aggregates() {
    let mut engine = paper_engine(StrategyKind::Aggregation.build());
    engine.post_send_batch(&[512; 4]).expect("post batch");
    engine.drain().expect("drain");
    let stats = engine.stats();
    assert_eq!(stats.msgs_aggregated, 4, "{stats:?}");
    assert_eq!(stats.packs_submitted, 1, "four small messages pack into one: {stats:?}");
    assert_eq!(stats.chunks_submitted, 1, "{stats:?}");
}
