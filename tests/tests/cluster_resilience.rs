//! Cluster-scale fault injection and self-healing collectives.
//!
//! Three contracts of the N-node fault path (DESIGN.md §15):
//!
//! 1. **Inertness** — a faulted stack with an *empty* schedule is
//!    bit-identical to a clean stack: same algorithm choice, same virtual
//!    completion times, zero failure stats. Fault capability must cost
//!    nothing until a fault is actually scheduled.
//! 2. **Engine-level healing** — a single NIC-port kill mid-barrier is
//!    absorbed below the runner: the per-pair engines fail over to the
//!    surviving rail and the collective completes deterministically with
//!    no DAG repair at all.
//! 3. **DAG repair** — a node death mid-barrier (plus a rail kill on a
//!    neighbour) exceeds what rail failover can fix. The watchdog tears
//!    the stranded hops out, repair replans over the survivors, and every
//!    survivor is released exactly once. Dead nodes are excused; repair
//!    hops never touch them.

use nm_collectives::{
    Algorithm, Collective, CollectiveCluster, Collectives, ProfileBank, ALGORITHMS,
};
use nm_faults::{ClusterFaultSchedule, ClusterFaultSpec, FaultKind};
use nm_model::builtin;
use nm_model::units::{KIB, MIB};
use nm_model::{SimDuration, SimTime};
use nm_sim::{ClusterSpec, RailId};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn testbed(n: usize) -> ClusterSpec {
    ClusterSpec::homogeneous(n, 4, builtin::paper_testbed())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Contract 1: an empty N-node fault schedule is inert. The faulted
    /// constructor threads a fault-capable transport through every pair,
    /// but with nothing scheduled the whole stack — sampling, selection,
    /// execution, stats — must be indistinguishable from the clean one.
    #[test]
    fn an_empty_fault_schedule_is_inert_for_collectives(
        n in 2usize..=6,
        algo_idx in 0usize..ALGORITHMS.len(),
        size_idx in 0usize..3,
    ) {
        let algorithm = ALGORITHMS[algo_idx];
        let bytes = match algorithm.collective() {
            Collective::Barrier => 1,
            Collective::Broadcast => [16 * KIB, 256 * KIB, MIB][size_idx],
            Collective::AllToAll => [4 * KIB, 32 * KIB, 128 * KIB][size_idx],
        };
        let mut clean = Collectives::new(testbed(n));
        let mut faulted =
            Collectives::new_faulted(testbed(n), &ClusterFaultSchedule::empty())
                .expect("empty schedule validates on any topology");
        prop_assert!(!faulted.runner().healing(), "empty schedule keeps the plain path");
        let a = clean.run_algorithm(algorithm, bytes).expect("clean run");
        let b = faulted.run_algorithm(algorithm, bytes).expect("faulted run");
        prop_assert_eq!(a, b, "empty schedule must be bit-identical to no schedule");
    }
}

/// One seeded chaos barrier: the low-latency rail's port on the root goes
/// hard-down at t = 1 µs, mid-flight for the first fan-in wave.
fn chaos_barrier(seed: u64) -> nm_collectives::CompletedOp {
    let schedule = ClusterFaultSchedule::new(seed).with(ClusterFaultSpec::port(
        0,
        RailId(1),
        SimTime::from_micros(1),
        FaultKind::RailDown { duration: SimDuration::from_micros(50_000) },
    ));
    let mut c = Collectives::new_faulted(testbed(8), &schedule).expect("stack");
    c.run_algorithm(Algorithm::BarrierTree, 1).expect("barrier survives a port kill")
}

/// Contract 2: a mid-operation rail kill is healed *below* the runner.
/// 8-byte tokens ride the low-latency rail; killing that port on the root
/// strands the first arrivals, the engines quarantine and fail over, and
/// the barrier completes — deterministically, slower than clean, with the
/// watchdog and DAG repair never engaging.
#[test]
fn seeded_rail_kill_mid_barrier_heals_below_the_dag() {
    let first = chaos_barrier(42);
    let second = chaos_barrier(42);
    assert_eq!(first, second, "same seed, same world: outcomes are bit-identical");

    let clean = Collectives::new(testbed(8))
        .run_algorithm(Algorithm::BarrierTree, 1)
        .expect("clean barrier");
    assert!(
        first.measured_us > clean.measured_us,
        "failover retries must cost virtual time: {} vs clean {}",
        first.measured_us,
        clean.measured_us
    );
    assert_eq!(first.stats.dead_nodes, 0, "one port down is degradation, not death");
    assert_eq!(first.stats.repairs, 0, "rail failover needs no DAG repair");
    assert_eq!(first.stats.hops_rerouted, 0);
}

/// Contract 3 (the issue's acceptance run): an 8-node binomial-tree
/// barrier loses node 5 at t = 1 µs — its fan-in arrival is mid-flight —
/// and neighbour 4 additionally loses its rail-0 port. Retries cannot
/// reach a dead endpoint, so the watchdog tears the stranded cone out and
/// DAG repair re-roots the barrier over the seven survivors. Every
/// survivor must be released exactly once and node 5 never appears in a
/// repair hop.
#[test]
fn eight_node_barrier_survives_a_node_death_via_dag_repair() {
    const DEAD: usize = 5;
    let forever = SimDuration::from_micros(10_000_000);
    let schedule = ClusterFaultSchedule::new(42)
        .with(ClusterFaultSpec::node_down(DEAD, SimTime::from_micros(1), forever))
        .with(ClusterFaultSpec::port(
            4,
            RailId(0),
            SimTime::from_micros(1),
            FaultKind::RailDown { duration: forever },
        ));
    let spec = testbed(8);
    let mut cc = CollectiveCluster::with_faults(spec.clone(), &schedule).expect("cluster");
    let mut bank = ProfileBank::new(spec);
    let dag = Algorithm::BarrierTree.dag(8, 1);
    let res = cc.run(&mut bank, &dag).expect("barrier must complete on the survivors");

    // Repair engaged: replacement hops were grafted and at least one
    // repair round ran, inside the bounded budget.
    assert_eq!(res.stats.dead_nodes, 1, "node 5 is down at quiescence");
    assert!(res.stats.hops_rerouted >= 1, "stats: {:?}", res.stats);
    assert!(res.stats.repairs >= 1, "stats: {:?}", res.stats);
    assert!(res.stats.repair_latency_us > 0.0, "stats: {:?}", res.stats);
    assert!(res.finished_at > res.started_at);
    assert_eq!(res.deliveries.len(), res.hops.len());

    // Exactly-once release accounting. Both the compiled tree and the
    // repair plan only release "upward" (src < dst), so a delivered hop
    // with src < dst into node s is s's barrier release.
    let survivors: BTreeSet<usize> = (0..8).filter(|&i| i != DEAD).collect();
    let delivered_releases = |node: usize| {
        res.hops
            .iter()
            .zip(&res.deliveries)
            .filter(|(h, d)| d.is_some() && h.src < h.dst && h.dst == node)
            .count()
    };
    for &s in survivors.iter().filter(|&&s| s != 0) {
        assert_eq!(delivered_releases(s), 1, "survivor {s} must be released exactly once");
    }
    assert_eq!(delivered_releases(DEAD), 0, "the dead node is excused, not released");

    // Repair hops route around the dead node entirely.
    let grafted = &res.hops[dag.hops.len()..];
    assert!(!grafted.is_empty());
    assert!(
        grafted.iter().all(|h| h.src != DEAD && h.dst != DEAD),
        "repair must never schedule through a dead node"
    );
    // And the original hops stranded on node 5 were torn out, not run.
    for (h, d) in res.hops[..dag.hops.len()].iter().zip(&res.deliveries) {
        if h.src == DEAD {
            assert!(d.is_none(), "{}->{} cannot deliver after the death", h.src, h.dst);
        }
    }
}
