//! Protocol-substrate integration: chunked messages racing over simulated
//! rails, reassembled and re-sequenced on the receive side — the machinery
//! the paper's planned MPICH2-Nemesis integration would sit on.

use bytes::Bytes;
use nm_model::TransferMode;
use nm_proto::{split_by_ratios, Reassembler, Sequencer};
use nm_sim::{ClusterSpec, NodeId, RailId, SendSpec, SimEvent, Simulator};
use std::collections::HashMap;

/// Sends `n_msgs` messages of one flow, each hetero-chunked over both
/// rails; the receive side reassembles chunks and sequences messages.
/// Asserts bytes and order both survive physical reordering.
#[test]
fn multiplexed_flow_survives_rail_races() {
    let n_msgs = 6u64;
    let msg_len = 300_000u64;
    let ratios = [0.58, 0.42];

    let mut sim = Simulator::new(ClusterSpec::paper_testbed());
    // Source data: message m is filled with byte (m * 7).
    let content = |m: u64| vec![(m * 7) as u8; msg_len as usize];

    // Submit every chunk of every message; chunk completion order on the
    // wire is rail-dependent, so later messages' fast-rail chunks overtake
    // earlier messages' slow-rail chunks.
    let mut chunk_of = HashMap::new();
    for m in 0..n_msgs {
        for c in split_by_ratios(msg_len, &ratios) {
            let id = sim.submit(
                SendSpec::simple(NodeId(0), NodeId(1), RailId(c.index as usize), c.len)
                    .with_mode(TransferMode::Rendezvous),
            );
            chunk_of.insert(id, (m, c.offset, c.len));
        }
    }

    // Receive side: reassemble each message, then sequence the flow.
    let mut assemblers: HashMap<u64, Reassembler> =
        (0..n_msgs).map(|m| (m, Reassembler::new(msg_len))).collect();
    let mut sequencer: Sequencer<Vec<u8>> = Sequencer::new(n_msgs as usize);
    let mut released: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut release_order = Vec::new();

    loop {
        let events = sim.step();
        if events.is_empty() {
            break;
        }
        for ev in events {
            if let SimEvent::Delivered { transfer, .. } = ev {
                let &(m, offset, len) = chunk_of.get(&transfer).expect("known chunk");
                let data =
                    Bytes::from(content(m)[offset as usize..(offset + len) as usize].to_vec());
                let asm = assemblers.get_mut(&m).expect("assembler");
                if asm.feed(offset, &data).expect("valid chunk") {
                    let msg = assemblers.remove(&m).unwrap().into_message();
                    for out in sequencer.accept(m, msg.to_vec()).expect("sequence") {
                        release_order.push(released.len() as u64);
                        released.push((released.len() as u64, out));
                    }
                }
            }
        }
    }

    assert_eq!(released.len(), n_msgs as usize, "all messages released");
    for (i, (_, data)) in released.iter().enumerate() {
        assert_eq!(data.len(), msg_len as usize);
        assert!(
            data.iter().all(|&b| b == (i as u64 * 7) as u8),
            "message {i} content corrupted or out of order"
        );
    }
}

/// Chunks of one message genuinely arrive out of order across rails
/// (sanity check that the previous test exercises reordering at all).
#[test]
fn rails_do_reorder_chunks() {
    let mut sim = Simulator::new(ClusterSpec::paper_testbed());
    // A big slow-rail chunk first, then a small fast-rail chunk.
    let slow = sim.submit(
        SendSpec::simple(NodeId(0), NodeId(1), RailId(1), 2 << 20)
            .with_mode(TransferMode::Rendezvous),
    );
    let fast = sim.submit(
        SendSpec::simple(NodeId(0), NodeId(1), RailId(0), 64 << 10)
            .with_mode(TransferMode::Rendezvous),
    );
    sim.run_until_idle();
    let slow_at = sim.transfer(slow).delivered_at.unwrap();
    let fast_at = sim.transfer(fast).delivered_at.unwrap();
    assert!(fast_at < slow_at, "expected physical reordering");
}
