//! Real-thread end-to-end tests: the engine drives the shared-memory
//! driver, real bytes move through throttled rails, checksums verify.

use bytes::Bytes;
use nm_core::driver::shmem::ShmemDriver;
use nm_core::prelude::*;
use nm_core::strategy::StrategyKind;

fn payload(len: usize, seed: u8) -> Bytes {
    Bytes::from(
        (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect::<Vec<u8>>(),
    )
}

fn shmem_session(kind: StrategyKind) -> Session {
    // Coarse sampling keeps wall-clock test time low.
    let sampling = nm_sampler::SamplingConfig {
        min_size: 1024,
        max_size: 256 * 1024,
        iters: 1,
        warmup: 0,
        ..Default::default()
    };
    Session::builder().strategy(kind).sampling(sampling).build_shmem(ShmemDriver::two_rail_demo())
}

#[test]
fn payloads_survive_hetero_splitting_across_real_threads() {
    let mut session = shmem_session(StrategyKind::HeteroSplit);
    let sizes = [10_000usize, 400_000, 3_000];
    let ids: Vec<_> = sizes
        .iter()
        .enumerate()
        .map(|(i, &len)| session.post_send_bytes(payload(len, i as u8)))
        .collect();
    for id in ids {
        let done = session.wait(id);
        assert!(done.duration.as_micros_f64() > 0.0);
    }
    // The driver verified every delivered chunk.
    // (Downcast via the stats the Session exposes: completed bytes.)
    assert_eq!(session.stats().bytes_completed, sizes.iter().map(|&s| s as u64).sum::<u64>());
}

#[test]
fn every_strategy_runs_on_real_threads() {
    for kind in [
        StrategyKind::SingleRail(None),
        StrategyKind::GreedyBalance,
        StrategyKind::IsoSplit,
        StrategyKind::HeteroSplit,
        StrategyKind::Aggregation,
        StrategyKind::MulticoreEager,
    ] {
        let mut session = shmem_session(kind);
        let ids: Vec<_> =
            (0..3).map(|i| session.post_send_bytes(payload(20_000 + i * 1000, i as u8))).collect();
        for id in ids {
            session.wait(id);
        }
        assert_eq!(session.stats().msgs_completed, 3, "{kind:?}");
    }
}

#[test]
fn driver_integrity_counters_stay_clean() {
    use nm_core::transport::{ChunkSubmit, Transport, TransportEvent};
    use nm_sim::RailId;
    let mut driver = ShmemDriver::two_rail_demo();
    let n = 16;
    for i in 0..n {
        let mut c = ChunkSubmit::new(RailId((i % 2) as usize), 8192);
        c.payload = Some(payload(8192, i as u8));
        driver.submit(c);
    }
    let mut delivered = 0;
    while delivered < n {
        for ev in driver.poll() {
            if matches!(ev, TransportEvent::ChunkDelivered { .. }) {
                delivered += 1;
            }
        }
    }
    let stats = driver.stats();
    assert_eq!(stats.delivered, n as u64);
    assert_eq!(stats.corrupt, 0);
    assert_eq!(stats.bytes_verified, n as u64 * 8192);
}
