//! Multi-thread stress over the admission-controlled posting surface:
//! several threads hammer `try_post_send` / `cancel` / deadline posts (the
//! shed path) against one engine behind a mutex, then the main thread
//! drains and checks conservation — every accepted message reaches exactly
//! one terminal state (completed, cancelled, or shed) and the rejection
//! counter matches what the posters observed.
//!
//! The engine itself is externally synchronized (`&mut self` methods), so
//! the interesting concurrency is in everything the facade runtime does
//! underneath plus the counter handoffs between poster threads. This test
//! is part of the TSan lane (`NM_TSAN=1 ./ci.sh`), where the same
//! schedule-dependent traffic runs under ThreadSanitizer.

use nm_core::driver::sim::SimDriver;
use nm_core::engine::{Engine, MsgId};
use nm_core::strategy::StrategyKind;
use nm_core::{AdmissionConfig, Backpressure, EngineError};
use nm_model::SimDuration;
use nm_sim::ClusterSpec;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

const THREADS: u64 = 4;
const ITERS: u64 = 150;
const MSG_CAP: u64 = 8;

fn stress_engine() -> Engine<SimDriver> {
    let spec = ClusterSpec::paper_testbed();
    let predictor = nm_tests::sample_predictor(&spec);
    Engine::new(SimDriver::new(spec), predictor, StrategyKind::HeteroSplit.build())
        .expect("engine")
        .with_admission_control(AdmissionConfig {
            max_pending_msgs: MSG_CAP,
            max_pending_bytes: 64 * 1024 * 1024,
            ..AdmissionConfig::default()
        })
        .expect("admission config")
}

/// SplitMix-style step for per-thread deterministic-but-varied decisions.
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed >> 11
}

#[test]
fn concurrent_post_cancel_shed_conserves_every_message() {
    let engine = Arc::new(Mutex::new(stress_engine()));
    // Every id the posters got an `Ok` for — cancel targets and the
    // population the conservation check accounts for.
    let ledger: Arc<Mutex<Vec<MsgId>>> = Arc::new(Mutex::new(Vec::new()));
    let accepted = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let cancel_attempts = Arc::new(AtomicU64::new(0));

    let posters: Vec<_> = (0..THREADS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let ledger = Arc::clone(&ledger);
            let accepted = Arc::clone(&accepted);
            let rejected = Arc::clone(&rejected);
            let cancel_attempts = Arc::clone(&cancel_attempts);
            thread::spawn(move || {
                let mut seed = 0x9E3779B97F4A7C15u64.wrapping_mul(t + 1);
                for _ in 0..ITERS {
                    let roll = next(&mut seed) % 10;
                    let size = 1 + next(&mut seed) % 65536;
                    let mut eng = engine.lock().unwrap();
                    match roll {
                        // Mostly plain posts: fill the queue until the cap
                        // pushes back, counting both outcomes.
                        0..=4 => match eng.try_post_send(size) {
                            Ok(id) => {
                                accepted.fetch_add(1, Ordering::Relaxed);
                                ledger.lock().unwrap().push(id);
                            }
                            Err(EngineError::Backpressure(
                                Backpressure::MsgCap { .. } | Backpressure::ByteCap { .. },
                            )) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("unexpected post error: {e:?}"),
                        },
                        // Deadline posts that expire almost immediately:
                        // any that sit behind the backlog are shed.
                        5..=6 => {
                            match eng.post_send_with_deadline(size, SimDuration::from_micros(1)) {
                                Ok(id) => {
                                    accepted.fetch_add(1, Ordering::Relaxed);
                                    ledger.lock().unwrap().push(id);
                                }
                                Err(EngineError::Backpressure(_)) => {
                                    rejected.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => panic!("unexpected deadline post error: {e:?}"),
                            }
                        }
                        // Cancel a random previously-accepted message.
                        // `Ok(false)` (too late, completes normally) is as
                        // valid an outcome as `Ok(true)`.
                        7..=8 => {
                            let target = {
                                let ids = ledger.lock().unwrap();
                                if ids.is_empty() {
                                    None
                                } else {
                                    Some(ids[next(&mut seed) as usize % ids.len()])
                                }
                            };
                            if let Some(id) = target {
                                cancel_attempts.fetch_add(1, Ordering::Relaxed);
                                eng.cancel(id).expect("cancel must not error");
                            }
                        }
                        // Occasionally make progress so completions and
                        // deadline sheds interleave with the posting.
                        _ => {
                            eng.poll().expect("poll");
                        }
                    }
                }
            })
        })
        .collect();
    for p in posters {
        p.join().expect("poster panicked");
    }

    let mut eng = engine.lock().unwrap();
    let drained = eng.drain().expect("drain");
    let stats = eng.stats();
    let accepted = accepted.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);

    // Under a cap of 8 with ~4x150 ops the queue must have pushed back.
    assert!(accepted > 0, "stress never got a message in");
    assert!(rejected > 0, "cap {MSG_CAP} never produced backpressure");
    assert!(cancel_attempts.load(Ordering::Relaxed) > 0, "stress never attempted a cancel");
    assert_eq!(stats.backpressure_rejections, rejected, "engine and posters disagree on rejects");

    // Conservation: every accepted message reached exactly one terminal
    // state. (Completions observed by mid-stress polls are counted in
    // msgs_completed even though drain no longer returns them.)
    assert_eq!(
        stats.msgs_completed + stats.cancelled + stats.msgs_shed,
        accepted,
        "accepted messages leaked or double-terminated: completed={} cancelled={} shed={} \
         drained_now={}",
        stats.msgs_completed,
        stats.cancelled,
        stats.msgs_shed,
        drained.len(),
    );
    // Only deadline posts can shed (no default deadline configured).
    let ids = ledger.lock().unwrap();
    assert_eq!(ids.len() as u64, accepted);

    // Quiescent: nothing left pending, a second drain is empty, and the
    // freed budget admits a full cap's worth of new posts.
    assert!(eng.drain().expect("second drain").is_empty());
    for _ in 0..MSG_CAP {
        eng.try_post_send(1024).expect("drained engine must admit up to the cap again");
    }
    let _ = eng.drain().expect("final drain");
}

/// Same surface, adversarial interleaving in miniature: two threads take
/// strict turns (via the mutex) where one fills to the cap and the other
/// cancels everything it can see, repeatedly. Checks the admission budget
/// never drifts: after each full drain the engine admits exactly the cap.
#[test]
fn cancel_storm_never_corrupts_the_admission_budget() {
    let engine = Arc::new(Mutex::new(stress_engine()));
    let ledger: Arc<Mutex<Vec<MsgId>>> = Arc::new(Mutex::new(Vec::new()));
    let filler = {
        let engine = Arc::clone(&engine);
        let ledger = Arc::clone(&ledger);
        thread::spawn(move || {
            let mut accepted = 0u64;
            for _ in 0..200 {
                let mut eng = engine.lock().unwrap();
                match eng.try_post_send(4096) {
                    Ok(id) => {
                        accepted += 1;
                        ledger.lock().unwrap().push(id);
                    }
                    Err(EngineError::Backpressure(_)) => {
                        eng.poll().expect("poll");
                    }
                    Err(e) => panic!("unexpected: {e:?}"),
                }
            }
            accepted
        })
    };
    let canceller = {
        let engine = Arc::clone(&engine);
        let ledger = Arc::clone(&ledger);
        thread::spawn(move || {
            for _ in 0..200 {
                let target = ledger.lock().unwrap().last().copied();
                if let Some(id) = target {
                    engine.lock().unwrap().cancel(id).expect("cancel");
                }
                thread::yield_now();
            }
        })
    };
    let accepted = filler.join().expect("filler panicked");
    canceller.join().expect("canceller panicked");

    let mut eng = engine.lock().unwrap();
    let _ = eng.drain().expect("drain");
    let stats = eng.stats();
    assert_eq!(
        stats.msgs_completed + stats.cancelled + stats.msgs_shed,
        accepted,
        "cancel storm broke message conservation"
    );
    // The budget must be fully released: exactly cap-many admissions, then
    // backpressure.
    for _ in 0..MSG_CAP {
        eng.try_post_send(1024).expect("budget not fully released");
    }
    assert!(
        matches!(eng.try_post_send(1024), Err(EngineError::Backpressure(_))),
        "cap not enforced after storm"
    );
    let _ = eng.drain().expect("final drain");
}
