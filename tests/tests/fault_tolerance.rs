//! End-to-end failover: a seeded rail outage mid-stream, driven entirely
//! through the public [`Engine`] API.
//!
//! The fastest rail (myri-10g) goes hard-down while a 1 MiB message stream
//! is in flight. The engine must fail the stranded chunks over to the
//! surviving rail, quarantine the dead one (never selecting it while
//! excluded), probe it back in after the outage, and finish the stream
//! with every message delivered — deterministically.

use nm_core::driver::faulty::FaultSimDriver;
use nm_core::engine::Engine;
use nm_core::strategy::StrategyKind;
use nm_core::{HealthConfig, RailState};
use nm_faults::{FaultKind, FaultSchedule, FaultSpec};
use nm_model::units::MIB;
use nm_model::{SimDuration, SimTime};
use nm_sim::{ClusterSpec, RailId};

const DOWN_RAIL: RailId = RailId(0); // myri-10g, the faster rail
const MSGS: usize = 40;

fn outage_schedule() -> FaultSchedule {
    FaultSchedule::new(42).with(FaultSpec {
        rail: DOWN_RAIL,
        at: SimTime::from_micros(2_000),
        kind: FaultKind::RailDown { duration: SimDuration::from_micros(10_000) },
    })
}

fn chaos_engine(schedule: FaultSchedule) -> Engine<FaultSimDriver> {
    let spec = ClusterSpec::paper_testbed();
    let predictor = nm_tests::sample_predictor(&spec);
    let cfg = HealthConfig {
        // Keep probing briskly so re-admission lands well inside the stream.
        max_probe_backoff: SimDuration::from_micros(2_000),
        ..HealthConfig::default()
    };
    Engine::new(FaultSimDriver::new(spec, schedule), predictor, StrategyKind::HeteroSplit.build())
        .expect("engine")
        .with_fault_tolerance(cfg)
        .expect("health config")
}

/// One full chaos run; returns per-message completion instants plus the
/// stat counters that summarize the failover behaviour.
fn run_stream(schedule: FaultSchedule) -> (Vec<SimTime>, Vec<u64>) {
    let mut engine = chaos_engine(schedule);
    let mut completions = Vec::with_capacity(MSGS);
    let mut saw_quarantined = false;
    let mut saw_probing = false;
    for _ in 0..MSGS {
        let excluded_at_post = !engine.health().expect("enabled").is_selectable(DOWN_RAIL);
        let id = engine.post_send(MIB).expect("post");
        let done = engine.wait(id).expect("every message must survive the outage");
        let health = engine.health().expect("enabled");
        saw_quarantined |= health.state(DOWN_RAIL) == RailState::Quarantined;
        saw_probing |= health.state(DOWN_RAIL) == RailState::Probing;
        if excluded_at_post && !health.is_selectable(DOWN_RAIL) {
            // Planned while excluded and the rail never came back in the
            // meantime: the delivered layout must avoid it entirely.
            assert!(
                done.chunks.iter().all(|(rail, _)| *rail != DOWN_RAIL),
                "chunk placed on a quarantined rail: {:?}",
                done.chunks
            );
        }
        completions.push(done.delivered_at);
    }
    assert!(saw_quarantined, "the outage must quarantine the rail");
    assert!(saw_probing || engine.stats().probes_sent > 0, "probing must be observable");
    let s = engine.stats().clone();
    assert_eq!(s.msgs_completed, MSGS as u64);
    assert!(s.chunks_failed > 0, "onset must strand chunks: {s:?}");
    assert!(s.retries > 0 && s.retransmitted_bytes > 0, "stranded chunks must retry: {s:?}");
    assert!(s.failovers > 0, "retries must move to the surviving rail: {s:?}");
    assert_eq!(s.quarantines, 1, "exactly one quarantine transition: {s:?}");
    assert_eq!(s.readmissions, 1, "the rail must be probed back in: {s:?}");
    assert!(s.probes_sent >= 2, "two-point probe ladder: {s:?}");
    assert!(s.failover_completions > 0, "failover latency must be accounted: {s:?}");
    assert_eq!(
        engine.health().expect("enabled").state(DOWN_RAIL),
        RailState::Healthy,
        "rail re-admitted by stream end"
    );
    // Once re-admitted the rail carries traffic again.
    assert!(s.rail_bytes[DOWN_RAIL.index()] > 0);
    let counters = vec![
        s.chunks_failed,
        s.chunks_timed_out,
        s.retries,
        s.retransmitted_bytes,
        s.failovers,
        s.quarantines,
        s.readmissions,
        s.probes_sent,
        s.rail_failures[DOWN_RAIL.index()],
        s.rail_retries[DOWN_RAIL.index()],
    ];
    (completions, counters)
}

#[test]
fn seeded_outage_fails_over_and_readmits_deterministically() {
    let (times_a, stats_a) = run_stream(outage_schedule());
    let (times_b, stats_b) = run_stream(outage_schedule());
    assert_eq!(times_a, times_b, "chaos runs must be bit-reproducible");
    assert_eq!(stats_a, stats_b, "stat counters must be bit-reproducible");
}

#[test]
fn fault_free_chaos_run_matches_plain_sim_run() {
    // Empty schedule: the chaos stack must be a bit-identical no-op.
    let mut chaos = chaos_engine(FaultSchedule::empty());
    let mut plain = {
        let spec = ClusterSpec::paper_testbed();
        let predictor = nm_tests::sample_predictor(&spec);
        Engine::new(
            nm_core::driver::sim::SimDriver::new(spec),
            predictor,
            StrategyKind::HeteroSplit.build(),
        )
        .expect("engine")
    };
    for _ in 0..8 {
        let c = chaos.post_send(MIB).expect("post");
        let p = plain.post_send(MIB).expect("post");
        let tc = chaos.wait(c).expect("wait").delivered_at;
        let tp = plain.wait(p).expect("wait").delivered_at;
        assert_eq!(tc, tp, "fault-free chaos timing must match the plain driver");
    }
    let s = chaos.stats();
    assert_eq!(
        (s.chunks_failed, s.retries, s.quarantines, s.probes_sent),
        (0, 0, 0, 0),
        "no fault machinery may engage on an empty schedule"
    );
}
