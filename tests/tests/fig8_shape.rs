//! Figure 8 shape assertions: who wins, by roughly what factor.
//!
//! Paper (MB = 2^20): Myri-10G 1170 MB/s, Quadrics 837 MB/s, iso-split
//! ~1670 MB/s, hetero-split ~1987 MB/s — close to the theoretical
//! aggregate. The reproduction must preserve the ordering, the approximate
//! magnitudes and the "hetero ≈ aggregate" headline.

use nm_core::strategy::StrategyKind;
use nm_model::units::{KIB, MIB};
use nm_sim::RailId;
use nm_tests::bandwidth_mibps;

const MYRI: StrategyKind = StrategyKind::SingleRail(Some(RailId(0)));
const QUAD: StrategyKind = StrategyKind::SingleRail(Some(RailId(1)));

#[test]
fn asymptotic_bandwidths_near_paper_values() {
    let myri = bandwidth_mibps(MYRI, 8 * MIB);
    let quad = bandwidth_mibps(QUAD, 8 * MIB);
    let iso = bandwidth_mibps(StrategyKind::IsoSplit, 8 * MIB);
    let hetero = bandwidth_mibps(StrategyKind::HeteroSplit, 8 * MIB);
    assert!((myri - 1170.0).abs() / 1170.0 < 0.05, "myri {myri:.0} vs paper 1170");
    assert!((quad - 837.0).abs() / 837.0 < 0.05, "quadrics {quad:.0} vs paper 837");
    assert!((iso - 1670.0).abs() / 1670.0 < 0.05, "iso {iso:.0} vs paper 1670");
    assert!((hetero - 1987.0).abs() / 1987.0 < 0.05, "hetero {hetero:.0} vs paper 1987");
}

#[test]
fn ordering_holds_for_every_large_size() {
    for size in [MIB, 2 * MIB, 4 * MIB, 8 * MIB] {
        let myri = bandwidth_mibps(MYRI, size);
        let quad = bandwidth_mibps(QUAD, size);
        let iso = bandwidth_mibps(StrategyKind::IsoSplit, size);
        let hetero = bandwidth_mibps(StrategyKind::HeteroSplit, size);
        assert!(quad < myri, "size {size}: quadrics {quad:.0} >= myri {myri:.0}");
        assert!(myri < iso, "size {size}: myri {myri:.0} >= iso {iso:.0}");
        assert!(iso < hetero, "size {size}: iso {iso:.0} >= hetero {hetero:.0}");
    }
}

#[test]
fn hetero_reaches_most_of_the_theoretical_aggregate() {
    let aggregate = bandwidth_mibps(MYRI, 8 * MIB) + bandwidth_mibps(QUAD, 8 * MIB);
    let hetero = bandwidth_mibps(StrategyKind::HeteroSplit, 8 * MIB);
    let fraction = hetero / aggregate;
    // Paper: 1987 of ~2007 => 99%. Demand at least 95%.
    assert!(fraction > 0.95, "hetero reaches only {:.1}% of aggregate", fraction * 100.0);
}

#[test]
fn iso_split_is_limited_by_the_slow_rail() {
    // Iso bandwidth ~ 2x the slower rail's (each chunk is half the bytes,
    // completion waits for Quadrics).
    let quad = bandwidth_mibps(QUAD, 8 * MIB);
    let iso = bandwidth_mibps(StrategyKind::IsoSplit, 8 * MIB);
    let ratio = iso / quad;
    assert!((ratio - 2.0).abs() < 0.15, "iso/quadrics ratio {ratio:.2} (expect ~2)");
}

#[test]
fn small_sizes_do_not_benefit_much_from_splitting() {
    // At 32 KiB (eager regime) the curves converge — splitting cannot beat
    // the best single rail by much because latency dominates.
    let myri = bandwidth_mibps(MYRI, 32 * KIB);
    let hetero = bandwidth_mibps(StrategyKind::HeteroSplit, 32 * KIB);
    assert!(hetero < 1.3 * myri, "at 32K hetero {hetero:.0} vs myri {myri:.0}");
}
