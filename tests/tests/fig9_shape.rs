//! Figure 9 shape assertions: the equation-(1) estimate of multicore eager
//! splitting is costly for small messages and saves ~30% by 64 KB, with the
//! crossover in the few-KB region.

use nm_core::estimate::estimate_eager_split;
use nm_model::units::{pow2_sizes, Micros, KIB};
use nm_sim::ClusterSpec;
use nm_tests::sample_predictor;

#[test]
fn crossover_sits_in_the_few_kb_region() {
    let p = sample_predictor(&ClusterSpec::paper_testbed());
    let crossover = pow2_sizes(4, 64 * KIB)
        .into_iter()
        .find(|&s| estimate_eager_split(&p, s, Micros::new(3.0)).splitting_wins())
        .expect("splitting must win somewhere below 64K");
    // Paper: "splitting small messages (i.e. smaller than 4 KB) appears to
    // be costly". Accept a crossover in [2K, 16K].
    assert!((2 * KIB..=16 * KIB).contains(&crossover), "crossover at {crossover} bytes");
}

#[test]
fn gain_at_64k_is_around_thirty_percent() {
    let p = sample_predictor(&ClusterSpec::paper_testbed());
    let gain = estimate_eager_split(&p, 64 * KIB, Micros::new(3.0)).gain;
    assert!((0.25..=0.50).contains(&gain), "gain at 64K: {:.1}%", gain * 100.0);
}

#[test]
fn gain_is_monotone_in_this_range() {
    let p = sample_predictor(&ClusterSpec::paper_testbed());
    let mut last = f64::MIN;
    for size in pow2_sizes(KIB, 64 * KIB) {
        let gain = estimate_eager_split(&p, size, Micros::new(3.0)).gain;
        assert!(gain >= last - 1e-6, "gain dipped at {size}");
        last = gain;
    }
}

#[test]
fn tiny_messages_always_lose_with_the_paper_cost() {
    let p = sample_predictor(&ClusterSpec::paper_testbed());
    for size in pow2_sizes(4, 512) {
        let e = estimate_eager_split(&p, size, Micros::new(3.0));
        assert!(!e.splitting_wins(), "{size}B should lose: {e:?}");
    }
}

#[test]
fn the_estimate_is_conservative_versus_the_simulator() {
    // The engine's MulticoreEager strategy realizes (approximately) what
    // the estimator predicts: simulate a 64 KiB offloaded split and compare
    // against the estimate within 15%.
    let p = sample_predictor(&ClusterSpec::paper_testbed());
    let est = estimate_eager_split(&p, 64 * KIB, Micros::new(3.0)).split_us;
    let simulated = nm_tests::one_way_us(nm_core::strategy::StrategyKind::MulticoreEager, 64 * KIB);
    let rel = (simulated - est).abs() / est;
    assert!(rel < 0.15, "simulated {simulated:.1}us vs estimate {est:.1}us");
}
