//! Minimal API-compatible shim for the `rand` crate surface this workspace
//! uses: a deterministic seedable generator (`rngs::StdRng`) plus
//! `random_range` over integer and float ranges. Vendored because the build
//! environment has no registry access.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — high quality,
//! fully deterministic across platforms, which is all the simulator's
//! jitter model needs.

use std::ops::{Range, RangeInclusive};

/// Core RNG trait: raw 64-bit output.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + unit * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods (the rand 0.10 spelling; also exported as
/// [`Rng`] for older call sites).
pub trait RngExt: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform `[0, 1)` float (or full integer range).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Older spelling of [`RngExt`].
pub use RngExt as Rng;

/// Types drawable from the "standard" distribution.
pub trait Standard {
    /// Draws a value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_splitmix(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.random_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let i = r.random_range(-3i64..3);
            assert!((-3..3).contains(&i));
        }
    }

    #[test]
    fn inclusive_range_hits_singleton() {
        let mut r = StdRng::seed_from_u64(1);
        assert_eq!(r.random_range(5u32..=5), 5);
        assert_eq!(r.random_range(0.0f64..=0.0), 0.0);
    }
}
