//! The glob-import surface: `use proptest::prelude::*;`

pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

/// Namespaced re-export so `proptest::collection::vec` resolves from the
/// prelude's `proptest` name too.
pub mod collection {
    pub use crate::collection::*;
}
