//! Runner configuration, case errors, and the deterministic test RNG.

use std::fmt;

/// Runner configuration. Only `cases` is honored by this shim.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256, max_shrink_iters: 0 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic xoshiro256** generator seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the name, then SplitMix64).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::seed_from_u64(h)
    }

    /// Seeds from a raw u64 through SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
