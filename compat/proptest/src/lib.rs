//! Minimal API-compatible shim for the `proptest` crate surface this
//! workspace uses. Vendored because the build environment has no registry
//! access.
//!
//! Differences from real proptest: no shrinking (failures report the raw
//! generated inputs), and the RNG seed is derived deterministically from
//! the test name so runs are reproducible.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `Config::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::Config::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case_index in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat), &mut rng);
                    )+
                    let rendered_inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(&::std::format!(
                                "\n  {} = {:?}", stringify!($arg), $arg));
                        )+
                        s
                    };
                    let mut body = move || -> ::std::result::Result<
                        (), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    if let ::std::result::Result::Err(e) = body() {
                        ::std::panic!(
                            "property failed at case {}/{}: {}\ninputs:{}",
                            case_index + 1, config.cases, e, rendered_inputs);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body, failing the case (with the
/// generated inputs reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+), l, r);
    }};
}

/// Early-exits the case (treated as a pass) when an assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((::std::boxed::Box::new($strat)
                as ::std::boxed::Box<dyn $crate::strategy::DynStrategy<_>>, $weight)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((::std::boxed::Box::new($strat)
                as ::std::boxed::Box<dyn $crate::strategy::DynStrategy<_>>, 1u32)),+
        ])
    };
}
