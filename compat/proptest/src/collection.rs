//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec`].
pub trait SizeRange {
    /// Draws a length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty size range");
        start + rng.below((end - start + 1) as u64) as usize
    }
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// Strategy for vectors of values from `element`, with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S, impl SizeRange> {
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::seed_from_u64(9);
        let s = vec(0u8..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
