//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values.
pub trait Strategy {
    /// Generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates with one strategy, then derives a second from the value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values (retries up to a bound, then panics).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, f }
    }

    /// Erases the concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// Object-safe generation, used by [`Union`] and [`BoxedStrategy`].
pub trait DynStrategy<V> {
    /// Draws one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {} rejected 1000 candidates in a row", self.whence);
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among boxed strategies — built by `prop_oneof!`.
pub struct Union<V> {
    variants: Vec<(Box<dyn DynStrategy<V>>, u32)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds from `(strategy, weight)` pairs.
    pub fn new(variants: Vec<(Box<dyn DynStrategy<V>>, u32)>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
        let total_weight = variants.iter().map(|&(_, w)| w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { variants, total_weight }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (s, w) in &self.variants {
            if pick < *w as u64 {
                return s.generate_dyn(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight accounting");
    }
}

/// `any::<T>()` support.
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Uniform values over a type's natural domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: PhantomData }
}

/// Types with a default generation domain.
pub trait Arbitrary: Debug {
    /// Draws one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        let mag = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + rng.unit_f64() * (end - start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = (0u32..10, 0.0f64..1.0).prop_map(|(a, b)| (a as f64) + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((0.0..10.0).contains(&v));
        }
    }

    #[test]
    fn union_picks_every_variant() {
        let mut rng = TestRng::seed_from_u64(3);
        let u = Union::new(vec![
            (Box::new(Just(1u8)) as Box<dyn DynStrategy<u8>>, 1),
            (Box::new(Just(2u8)) as Box<dyn DynStrategy<u8>>, 1),
        ]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
