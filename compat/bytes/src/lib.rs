//! Minimal API-compatible shim for the `bytes` crate surface this workspace
//! uses. Vendored because the build environment has no registry access.
//!
//! [`Bytes`] is a refcounted view (`Arc<[u8]>` + range), so `clone`,
//! `slice` and `split_to` are zero-copy exactly like the real crate —
//! the property the engine's zero-copy hot paths rely on.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Read cursor over a contiguous byte region. Integer reads are big-endian,
/// matching the real `bytes` crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The readable region.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True when bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Copies bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor. Integer writes are big-endian.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Repr {
    fn as_slice(&self) -> &[u8] {
        match self {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }
}

/// Cheaply clonable, sliceable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes { repr: Repr::Static(&[]), start: 0, end: 0 }
    }

    /// Zero-copy view of a static slice.
    pub const fn from_static(s: &'static [u8]) -> Self {
        Bytes { repr: Repr::Static(s), start: 0, end: s.len() }
    }

    /// Copies `src` into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    /// View as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.repr.as_slice()[self.start..self.end]
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-view.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of 0..{}", self.len());
        Bytes { repr: self.repr.clone(), start: self.start + lo, end: self.start + hi }
    }

    /// Splits off and returns the first `at` bytes (zero-copy); `self`
    /// keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to {at} out of {}", self.len());
        let head = self.slice(0..at);
        self.start += at;
        head
    }

    /// Copies out to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { repr: Repr::Shared(Arc::from(v)), start: 0, end: len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        let len = b.len();
        Bytes { repr: Repr::Shared(Arc::from(b)), start: 0, end: len }
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Self {
        m.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "... ({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance {cnt} out of {}", self.len());
        self.start += cnt;
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Reserves additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Converts to an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Copies out to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Clears the contents, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_are_views() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mid = b.slice(2..6);
        assert_eq!(&mid[..], &[2, 3, 4, 5]);
        let mut rest = b.clone();
        let head = rest.split_to(3);
        assert_eq!(&head[..], &[0, 1, 2]);
        assert_eq!(&rest[..], &[3, 4, 5, 6, 7]);
        // The original is untouched.
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn buf_reads_are_big_endian() {
        let mut m = BytesMut::new();
        m.put_u8(0xAB);
        m.put_u32(0x01020304);
        m.put_u64(0x1122334455667788);
        m.put_bytes(0, 2);
        let mut b = m.freeze();
        assert_eq!(b.remaining(), 15);
        assert_eq!(b.get_u8(), 0xAB);
        assert_eq!(b.get_u32(), 0x01020304);
        assert_eq!(b.get_u64(), 0x1122334455667788);
        assert_eq!(b.remaining(), 2);
        b.advance(2);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_buf_impl_works() {
        let raw = [1u8, 0, 0, 0, 2];
        let mut s: &[u8] = &raw;
        assert_eq!(s.get_u8(), 1);
        assert_eq!(s.get_u32(), 2);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn equality_and_static() {
        let a = Bytes::from_static(b"hello");
        assert_eq!(a, Bytes::copy_from_slice(b"hello"));
        assert_eq!(a, *b"hello");
        assert_eq!(&a[..], b"hello");
    }
}
