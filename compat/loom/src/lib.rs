//! Minimal API-compatible shim for the `loom` concurrency model checker.
//! Vendored because this build environment has no registry access.
//!
//! Unlike the other shims in `compat/`, this one is not a thin delegation:
//! it implements a real (small) model checker. [`model`] re-runs a closure
//! under a cooperative scheduler that serializes all model threads and
//! explores interleavings by depth-first search over preemption choices at
//! every synchronization operation, bounded by a preemption budget
//! (`LOOM_MAX_PREEMPTIONS`, default 2) and an iteration cap
//! (`LOOM_MAX_ITERS`, default 4000) — the same knobs real loom exposes.
//!
//! What it checks: panics/assertion failures in any explored interleaving,
//! lost wakeups and deadlocks (every-thread-blocked states are reported;
//! timed waits fire only when nothing else can run), leaked (unjoined)
//! model threads, and double/missed execution observable through model
//! state.
//!
//! Known limitations vs. real loom:
//! * **Sequentially consistent memory only.** Execution is serialized, so
//!   `Ordering` arguments are accepted but weak-memory reorderings are not
//!   explored. Relaxed/acquire-release *logic* bugs that require actual
//!   reordering need the ThreadSanitizer CI lane.
//! * Forced yields (`thread::yield_now`, `sleep`) switch round-robin
//!   instead of branching, to keep spin loops from exploding the search.
//! * No `UnsafeCell`/`lazy_static` modeling; `Arc` is `std::sync::Arc`.
//!
//! Dual-mode: every shim type also works *outside* [`model`], delegating
//! to the real `std` primitive. Code compiled with `--cfg loom` therefore
//! still runs correctly in ordinary unit tests and doctests.

mod rt;

pub mod sync;
pub mod thread;
pub mod time;

/// Explores interleavings of `f`. See the crate docs for bounds and
/// limitations; panics with the failing schedule if any interleaving
/// fails.
pub fn model<F: Fn()>(f: F) {
    rt::model_impl(f);
}

/// Hints that the caller is spinning; a forced scheduler switch in the
/// model, a plain `std` spin hint outside it.
pub mod hint {
    /// Spin-loop hint.
    pub fn spin_loop() {
        crate::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Condvar, Mutex};
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    /// The canonical torn read-modify-write: two threads doing
    /// load-then-store increments lose an update in some interleaving.
    /// The checker MUST find that interleaving (this is the test that the
    /// model checker actually checks something).
    #[test]
    fn finds_lost_update_race() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            model(|| {
                let c = Arc::new(AtomicUsize::new(0));
                let hs: Vec<_> = (0..2)
                    .map(|_| {
                        let c = Arc::clone(&c);
                        thread::spawn(move || {
                            let v = c.load(Ordering::SeqCst);
                            c.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in hs {
                    h.join().unwrap();
                }
                assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
            });
        }));
        let err = result.expect_err("model must find the lost-update interleaving");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("loom model failed"), "unexpected panic: {msg}");
    }

    /// The same program with a proper atomic RMW has no failing
    /// interleaving: the model must pass (and exhaust its search).
    #[test]
    fn passes_correct_fetch_add() {
        model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(c.load(Ordering::SeqCst), 2);
        });
    }

    /// Classic lost wakeup: waiting on a condvar *without re-checking the
    /// predicate under the lock* hangs when the notify lands before the
    /// wait. The scheduler's deadlock rule wakes the timed wait with
    /// `timed_out() == true`, which the model asserts against.
    #[test]
    fn finds_lost_wakeup() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            model(|| {
                let pair = Arc::new((Mutex::new(false), Condvar::new()));
                let p = Arc::clone(&pair);
                let signaller = thread::spawn(move || {
                    let (m, cv) = &*p;
                    *m.lock() = true;
                    cv.notify_one();
                });
                let (m, cv) = &*pair;
                // BUG under test: the predicate is checked in a separate
                // critical section from the wait, so the notify can land
                // in the window between them and be lost.
                let not_done = !*m.lock();
                if not_done {
                    let mut g = m.lock();
                    let res = cv.wait_for(&mut g, std::time::Duration::from_secs(5));
                    assert!(!res.timed_out(), "lost wakeup");
                }
                signaller.join().unwrap();
            });
        }));
        assert!(result.is_err(), "model must find the lost-wakeup interleaving");
    }

    /// The fixed version (predicate loop) has no failing interleaving.
    #[test]
    fn passes_predicate_loop_wakeup() {
        model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p = Arc::clone(&pair);
            let signaller = thread::spawn(move || {
                let (m, cv) = &*p;
                *m.lock() = true;
                cv.notify_one();
            });
            let (m, cv) = &*pair;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
            drop(done);
            signaller.join().unwrap();
        });
    }

    /// Mutual exclusion: increments under a mutex never tear.
    #[test]
    fn passes_mutex_counter() {
        model(|| {
            let c = Arc::new(Mutex::new(0u32));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        *c.lock() += 1;
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(*c.lock(), 2);
        });
    }

    /// A genuine deadlock (lock-order inversion) is detected and reported
    /// rather than hanging the test.
    #[test]
    fn finds_lock_order_deadlock() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let h = thread::spawn(move || {
                    let _g1 = a2.lock();
                    let _g2 = b2.lock();
                });
                let _g1 = b.lock();
                let _g2 = a.lock();
                drop(_g2);
                drop(_g1);
                let _ = h.join();
            });
        }));
        let err = result.expect_err("model must find the AB/BA deadlock");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("deadlock"), "expected a deadlock report, got: {msg}");
    }

    /// Dual-mode sanity: the shim primitives behave like std outside
    /// `model()`.
    #[test]
    fn works_outside_model() {
        let c = Arc::new(AtomicUsize::new(0));
        let m = Arc::new(Mutex::new(0u32));
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    *m.lock() += 1;
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::SeqCst), 4);
        assert_eq!(*m.lock(), 4);
        let t0 = time::Instant::now();
        assert!(time::Instant::now() >= t0);
    }
}
