//! Atomic shims: every operation is a model yield point (a potential
//! preemption), then delegates to the real `std` atomic. Because model
//! execution is serialized, the result is a sequentially consistent
//! memory model regardless of the `Ordering` argument — orderings are
//! accepted for API compatibility and *validated for legality* (e.g. no
//! `Release` loads), not modeled weakly.

pub use std::sync::atomic::Ordering;

use crate::rt;

fn maybe_yield() {
    if let Some((rt, me)) = rt::ctx() {
        rt.yield_point(me);
    }
}

macro_rules! atomic_shim {
    ($name:ident, $std:ty, $ty:ty) => {
        /// Model-aware atomic.
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Creates a new atomic.
            pub const fn new(v: $ty) -> Self {
                Self { inner: <$std>::new(v) }
            }

            /// Atomic load (a model yield point).
            pub fn load(&self, order: Ordering) -> $ty {
                maybe_yield();
                self.inner.load(order)
            }

            /// Atomic store (a model yield point).
            pub fn store(&self, v: $ty, order: Ordering) {
                maybe_yield();
                self.inner.store(v, order)
            }

            /// Atomic swap (a model yield point).
            pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                maybe_yield();
                self.inner.swap(v, order)
            }

            /// Atomic compare-exchange (a model yield point).
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                maybe_yield();
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Unsynchronized read through exclusive access.
            pub fn get_mut(&mut self) -> &mut $ty {
                self.inner.get_mut()
            }

            /// Consumes the atomic, returning the value.
            pub fn into_inner(self) -> $ty {
                self.inner.into_inner()
            }
        }
    };
}

macro_rules! atomic_int_shim {
    ($name:ident, $std:ty, $ty:ty) => {
        atomic_shim!($name, $std, $ty);

        impl $name {
            /// Atomic add, returning the previous value (a yield point).
            pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                maybe_yield();
                self.inner.fetch_add(v, order)
            }

            /// Atomic subtract, returning the previous value (a yield point).
            pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                maybe_yield();
                self.inner.fetch_sub(v, order)
            }

            /// Atomic max, returning the previous value (a yield point).
            pub fn fetch_max(&self, v: $ty, order: Ordering) -> $ty {
                maybe_yield();
                self.inner.fetch_max(v, order)
            }

            /// Atomic min, returning the previous value (a yield point).
            pub fn fetch_min(&self, v: $ty, order: Ordering) -> $ty {
                maybe_yield();
                self.inner.fetch_min(v, order)
            }
        }
    };
}

/// Memory fence (a model yield point). Model execution is serialized and
/// sequentially consistent, so the fence itself is a no-op beyond the
/// preemption opportunity — matching how every shim op is modeled.
pub fn fence(order: Ordering) {
    maybe_yield();
    // A `Relaxed` fence is illegal in std; surface that misuse in models too.
    assert!(order != Ordering::Relaxed, "fence must not be Relaxed");
}

atomic_shim!(AtomicBool, std::sync::atomic::AtomicBool, bool);
atomic_int_shim!(AtomicU32, std::sync::atomic::AtomicU32, u32);
atomic_int_shim!(AtomicU64, std::sync::atomic::AtomicU64, u64);
atomic_int_shim!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
atomic_int_shim!(AtomicI64, std::sync::atomic::AtomicI64, i64);
