//! The model-checking runtime: a cooperative scheduler that serializes
//! model threads and explores interleavings by depth-first search over
//! scheduling choices.
//!
//! Execution model: at most one model thread runs at a time. Every shim
//! synchronization operation (atomic access, mutex acquire, condvar
//! notify, spawn) is a *yield point* where the scheduler may preempt the
//! running thread and hand the token to another runnable thread. Which
//! thread continues is a recorded *choice*; re-running the model with a
//! mutated choice prefix replays a different interleaving. Exploration is
//! exhaustive up to a preemption bound (like real loom's
//! `LOOM_MAX_PREEMPTIONS`) and an iteration cap.
//!
//! Memory model: sequential consistency. Because execution is serialized,
//! the underlying `std` primitives observe a total order; weak-memory
//! reorderings are *not* modeled. The checker therefore finds logic races
//! (lost wakeups, lost work, double execution, shutdown races) but cannot
//! find bugs that only a relaxed-memory machine exhibits — that is what
//! the ThreadSanitizer lane is for.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Panic payload used to unwind model threads when an execution is torn
/// down (after a failure in a sibling thread or a step-budget overrun).
/// Not itself a failure.
pub(crate) struct Cancelled;

/// One recorded scheduling decision: which of `options` runnable
/// continuations was taken at a yield point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Choice {
    pub taken: usize,
    pub options: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    /// Runnable (or currently running).
    No,
    /// Waiting for the mutex keyed by this address.
    Mutex(usize),
    /// Waiting on the condvar keyed by this address. `timed` waits are
    /// eligible for a timeout wakeup when the model would otherwise
    /// deadlock.
    Condvar { cv: usize, timed: bool },
    /// Waiting for thread `tid` to finish.
    Join(usize),
    /// Finished executing.
    Finished,
}

struct Th {
    blocked: Blocked,
    /// Set when a timed condvar wait was woken by the deadlock-breaking
    /// timeout rule rather than a notify.
    timed_out: bool,
}

#[derive(Default)]
struct MutexSt {
    owner: Option<usize>,
}

#[derive(Default)]
struct CvSt {
    /// FIFO of waiting thread ids.
    waiters: Vec<usize>,
}

/// Exploration limits (env-overridable, see [`crate::model`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Limits {
    pub max_preemptions: usize,
    pub max_iterations: usize,
    pub max_steps: usize,
}

struct Sched {
    threads: Vec<Th>,
    current: usize,
    /// Choice sequence: replayed prefix then recorded extensions.
    choices: Vec<Choice>,
    cursor: usize,
    preemptions: usize,
    steps: usize,
    limits: Limits,
    mutexes: HashMap<usize, MutexSt>,
    condvars: HashMap<usize, CvSt>,
    clock: u64,
    cancelled: bool,
    failure: Option<String>,
}

/// One execution's scheduler. Shared by all model threads of that
/// execution via `Arc`.
pub(crate) struct Rt {
    sched: StdMutex<Sched>,
    cv: StdCondvar,
    /// Real OS join handles for every spawned model thread, joined by the
    /// driver at execution teardown.
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Rt>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The (runtime, thread-id) context of the calling thread, when it is a
/// model thread of an active execution.
pub(crate) fn ctx() -> Option<(Arc<Rt>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(v: Option<(Arc<Rt>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = v);
}

fn lock<T>(m: &StdMutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl Rt {
    fn new(limits: Limits, prefix: Vec<Choice>) -> Self {
        Rt {
            sched: StdMutex::new(Sched {
                threads: vec![Th { blocked: Blocked::No, timed_out: false }],
                current: 0,
                choices: prefix,
                cursor: 0,
                preemptions: 0,
                steps: 0,
                limits,
                mutexes: HashMap::new(),
                condvars: HashMap::new(),
                clock: 0,
                cancelled: false,
                failure: None,
            }),
            cv: StdCondvar::new(),
            handles: StdMutex::new(Vec::new()),
        }
    }

    // ---- scheduling core -------------------------------------------------

    /// Bails out of the current thread if the execution was cancelled.
    /// Never called while the thread is already unwinding (callers check).
    fn check_cancelled(s: &Sched) {
        if s.cancelled && !std::thread::panicking() {
            panic::panic_any(Cancelled);
        }
    }

    fn bump_step(s: &mut Sched) {
        s.steps += 1;
        if s.steps > s.limits.max_steps {
            // Budget overrun: tear the execution down without recording a
            // failure — the schedule was legal, just too long to finish.
            s.cancelled = true;
        }
    }

    /// Runnable thread ids other than `me`, in ascending order.
    fn runnable_others(s: &Sched, me: usize) -> Vec<usize> {
        (0..s.threads.len()).filter(|&t| t != me && s.threads[t].blocked == Blocked::No).collect()
    }

    /// Takes (replaying) or records the next scheduling choice.
    fn next_choice(s: &mut Sched, options: usize) -> usize {
        let taken = if s.cursor < s.choices.len() {
            let c = s.choices[s.cursor];
            assert_eq!(
                c.options, options,
                "loom shim: nondeterministic replay (expected {} options at step {}, got {})",
                c.options, s.cursor, options
            );
            c.taken
        } else {
            s.choices.push(Choice { taken: 0, options });
            0
        };
        s.cursor += 1;
        taken
    }

    /// A preemptible yield point: the scheduler may (as a recorded choice)
    /// switch execution to another runnable thread before the caller's
    /// next operation.
    pub(crate) fn yield_point(self: &Arc<Self>, me: usize) {
        let mut s = lock(&self.sched);
        Self::check_cancelled(&s);
        Self::bump_step(&mut s);
        Self::check_cancelled(&s);
        if s.cancelled {
            // Teardown in progress on an already-unwinding thread: scheduling
            // is defunct, run free (real primitives keep this sound).
            return;
        }
        debug_assert_eq!(s.current, me, "yield from a thread that is not scheduled");
        let others = Self::runnable_others(&s, me);
        if others.is_empty() || s.preemptions >= s.limits.max_preemptions {
            return;
        }
        let taken = Self::next_choice(&mut s, 1 + others.len());
        if taken > 0 {
            s.preemptions += 1;
            s.current = others[taken - 1];
            self.cv.notify_all();
            self.wait_scheduled(s, me);
        }
    }

    /// A forced, non-branching switch: hand the token to the next runnable
    /// thread in round-robin order (used by `yield_now`/`sleep`, where
    /// staying put would let spin loops starve the model).
    pub(crate) fn forced_yield(self: &Arc<Self>, me: usize) {
        let mut s = lock(&self.sched);
        Self::check_cancelled(&s);
        Self::bump_step(&mut s);
        Self::check_cancelled(&s);
        if s.cancelled {
            return;
        }
        let n = s.threads.len();
        let next = (1..n).map(|d| (me + d) % n).find(|&t| s.threads[t].blocked == Blocked::No);
        if let Some(next) = next {
            s.current = next;
            self.cv.notify_all();
            self.wait_scheduled(s, me);
        }
    }

    /// Blocks the calling thread until it is scheduled again, resolving
    /// deadlocks via timed-wait wakeups while parked.
    fn wait_scheduled(&self, mut s: std::sync::MutexGuard<'_, Sched>, me: usize) {
        loop {
            if s.cancelled {
                drop(s);
                if !std::thread::panicking() {
                    panic::panic_any(Cancelled);
                }
                return;
            }
            if s.current == me && s.threads[me].blocked == Blocked::No {
                return;
            }
            s = match self.cv.wait(s) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Parks `me` as blocked and hands the token to another thread. The
    /// caller must re-check its wait condition after this returns.
    fn block_and_switch(
        self: &Arc<Self>,
        mut s: std::sync::MutexGuard<'_, Sched>,
        me: usize,
        why: Blocked,
    ) {
        s.threads[me].blocked = why;
        self.pick_next_locked(&mut s, me);
        self.wait_scheduled(s, me);
    }

    /// Chooses the next thread to run after `me` stopped being runnable.
    /// Round-robin over runnable threads; if none, wakes the
    /// lowest-numbered timed condvar waiter with a timeout; if none of
    /// those either, the model is deadlocked.
    fn pick_next_locked(&self, s: &mut Sched, me: usize) {
        let n = s.threads.len();
        if let Some(next) =
            (1..=n).map(|d| (me + d) % n).find(|&t| s.threads[t].blocked == Blocked::No)
        {
            s.current = next;
            self.cv.notify_all();
            return;
        }
        // No runnable thread: fire the earliest-registered eligible timeout.
        let timed =
            (0..n).find(|&t| matches!(s.threads[t].blocked, Blocked::Condvar { timed: true, .. }));
        if let Some(t) = timed {
            if let Blocked::Condvar { cv, .. } = s.threads[t].blocked {
                if let Some(cvst) = s.condvars.get_mut(&cv) {
                    cvst.waiters.retain(|&w| w != t);
                }
            }
            s.threads[t].blocked = Blocked::No;
            s.threads[t].timed_out = true;
            s.current = t;
            self.cv.notify_all();
            return;
        }
        if s.threads.iter().all(|t| t.blocked == Blocked::Finished) {
            // Execution over; nothing to schedule (the driver notices).
            return;
        }
        s.cancelled = true;
        if s.failure.is_none() {
            let states: Vec<String> = s
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| format!("t{i}:{:?}", t.blocked))
                .collect();
            s.failure =
                Some(format!("model deadlock: every thread is blocked [{}]", states.join(", ")));
        }
        self.cv.notify_all();
    }

    // ---- primitives ------------------------------------------------------

    /// Model-level mutex acquire (the caller then takes the uncontended
    /// real lock).
    pub(crate) fn mutex_lock(self: &Arc<Self>, me: usize, addr: usize) {
        self.yield_point(me);
        let mut s = lock(&self.sched);
        loop {
            Self::check_cancelled(&s);
            let st = s.mutexes.entry(addr).or_default();
            if st.owner.is_none() {
                st.owner = Some(me);
                return;
            }
            self.block_and_switch_inner(&mut s, me, Blocked::Mutex(addr));
            s = self.re_lock(s);
        }
    }

    /// Non-blocking model-level mutex acquire.
    pub(crate) fn mutex_try_lock(self: &Arc<Self>, me: usize, addr: usize) -> bool {
        self.yield_point(me);
        let mut s = lock(&self.sched);
        Self::check_cancelled(&s);
        let st = s.mutexes.entry(addr).or_default();
        if st.owner.is_none() {
            st.owner = Some(me);
            true
        } else {
            false
        }
    }

    /// In-place variant of [`Self::block_and_switch`] for callers that
    /// need to keep looping on the scheduler lock.
    fn block_and_switch_inner(&self, s: &mut Sched, me: usize, why: Blocked) {
        s.threads[me].blocked = why;
        self.pick_next_locked(s, me);
    }

    fn re_lock<'a>(
        &'a self,
        s: std::sync::MutexGuard<'a, Sched>,
    ) -> std::sync::MutexGuard<'a, Sched> {
        // Wait (parked on the real condvar) until scheduled again.
        let mut s = s;
        loop {
            if s.cancelled {
                drop(s);
                if !std::thread::panicking() {
                    panic::panic_any(Cancelled);
                }
                return lock(&self.sched);
            }
            let me = ctx().expect("model thread").1;
            if s.current == me && s.threads[me].blocked == Blocked::No {
                return s;
            }
            s = match self.cv.wait(s) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    pub(crate) fn mutex_unlock(self: &Arc<Self>, me: usize, addr: usize) {
        let mut s = lock(&self.sched);
        let st = s.mutexes.entry(addr).or_default();
        debug_assert_eq!(st.owner, Some(me), "unlock by non-owner");
        st.owner = None;
        for t in 0..s.threads.len() {
            if s.threads[t].blocked == Blocked::Mutex(addr) {
                s.threads[t].blocked = Blocked::No;
            }
        }
        self.cv.notify_all();
    }

    /// Condvar wait: releases `mutex_addr`, parks on `cv_addr`, returns
    /// `true` when woken by the deadlock-breaking timeout rule. The caller
    /// re-acquires the mutex afterwards.
    pub(crate) fn condvar_wait(
        self: &Arc<Self>,
        me: usize,
        cv_addr: usize,
        mutex_addr: usize,
        timed: bool,
    ) -> bool {
        let mut s = lock(&self.sched);
        Self::check_cancelled(&s);
        Self::bump_step(&mut s);
        Self::check_cancelled(&s);
        if s.cancelled {
            // Unwinding during teardown: release ownership and report a
            // timeout so the caller's wait loop exits.
            let st = s.mutexes.entry(mutex_addr).or_default();
            st.owner = None;
            self.cv.notify_all();
            return true;
        }
        // Release the mutex (atomically with parking, as condvars demand).
        let st = s.mutexes.entry(mutex_addr).or_default();
        debug_assert_eq!(st.owner, Some(me), "condvar wait without holding the mutex");
        st.owner = None;
        for t in 0..s.threads.len() {
            if s.threads[t].blocked == Blocked::Mutex(mutex_addr) {
                s.threads[t].blocked = Blocked::No;
            }
        }
        s.condvars.entry(cv_addr).or_default().waiters.push(me);
        s.threads[me].timed_out = false;
        self.block_and_switch(s, me, Blocked::Condvar { cv: cv_addr, timed });
        let mut s = lock(&self.sched);
        Self::check_cancelled(&s);
        let timed_out = s.threads[me].timed_out;
        s.threads[me].timed_out = false;
        timed_out
    }

    pub(crate) fn notify_one(self: &Arc<Self>, me: usize, cv_addr: usize) {
        self.yield_point(me);
        let mut s = lock(&self.sched);
        Self::check_cancelled(&s);
        if let Some(cvst) = s.condvars.get_mut(&cv_addr) {
            if !cvst.waiters.is_empty() {
                let t = cvst.waiters.remove(0);
                s.threads[t].blocked = Blocked::No;
                self.cv.notify_all();
            }
        }
    }

    pub(crate) fn notify_all(self: &Arc<Self>, me: usize, cv_addr: usize) {
        self.yield_point(me);
        let mut s = lock(&self.sched);
        Self::check_cancelled(&s);
        let woken: Vec<usize> = match s.condvars.get_mut(&cv_addr) {
            Some(cvst) => cvst.waiters.drain(..).collect(),
            None => Vec::new(),
        };
        if !woken.is_empty() {
            for t in woken {
                s.threads[t].blocked = Blocked::No;
            }
            self.cv.notify_all();
        }
    }

    /// Registers and starts a new model thread running `f`.
    pub(crate) fn spawn(self: &Arc<Self>, me: usize, f: Box<dyn FnOnce() + Send>) -> usize {
        let tid = {
            let mut s = lock(&self.sched);
            Self::check_cancelled(&s);
            s.threads.push(Th { blocked: Blocked::No, timed_out: false });
            s.threads.len() - 1
        };
        let rt = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("loom-model-{tid}"))
            .spawn(move || {
                set_ctx(Some((Arc::clone(&rt), tid)));
                {
                    let s = lock(&rt.sched);
                    rt.wait_scheduled(s, tid);
                }
                let result = panic::catch_unwind(AssertUnwindSafe(f));
                rt.finish_thread(tid, result.err());
                set_ctx(None);
            })
            .expect("spawn model thread");
        lock(&self.handles).push(handle);
        // Spawn is itself a yield point: some schedules run the child
        // immediately, others let the parent race ahead.
        self.yield_point(me);
        tid
    }

    fn finish_thread(
        self: &Arc<Self>,
        me: usize,
        panic_payload: Option<Box<dyn std::any::Any + Send>>,
    ) {
        let mut s = lock(&self.sched);
        if let Some(p) = panic_payload {
            if !p.is::<Cancelled>() && s.failure.is_none() {
                s.failure = Some(payload_msg(&p));
                s.cancelled = true;
            }
        }
        s.threads[me].blocked = Blocked::Finished;
        for t in 0..s.threads.len() {
            if s.threads[t].blocked == Blocked::Join(me) {
                s.threads[t].blocked = Blocked::No;
            }
        }
        if s.cancelled {
            self.cv.notify_all();
            return;
        }
        if s.current == me {
            self.pick_next_locked(&mut s, me);
        } else {
            self.cv.notify_all();
        }
    }

    /// True once thread `tid` finished; blocks the caller until then.
    pub(crate) fn join(self: &Arc<Self>, me: usize, tid: usize) {
        loop {
            let s = lock(&self.sched);
            Self::check_cancelled(&s);
            if s.threads[tid].blocked == Blocked::Finished {
                return;
            }
            self.block_and_switch(s, me, Blocked::Join(tid));
        }
    }

    /// Monotonic fake clock (one tick per observation).
    pub(crate) fn now(self: &Arc<Self>) -> u64 {
        let mut s = lock(&self.sched);
        s.clock += 1;
        s.clock
    }

    pub(crate) fn clock(self: &Arc<Self>) -> u64 {
        lock(&self.sched).clock
    }
}

fn payload_msg(p: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

// ---- driver --------------------------------------------------------------

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

static HOOK_INSTALLED: AtomicBool = AtomicBool::new(false);

/// Silences panic output for [`Cancelled`] teardown unwinds (they are
/// bookkeeping, not failures) while delegating everything else to the
/// previously installed hook.
fn install_quiet_hook() {
    if HOOK_INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let prev = panic::take_hook();
    panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<Cancelled>().is_some() {
            return;
        }
        prev(info);
    }));
}

/// Explores interleavings of `f` until the choice space (bounded by the
/// preemption budget) is exhausted or the iteration cap is hit. Panics,
/// reporting the failing schedule, if any execution of `f` panics,
/// deadlocks, or leaks an unjoined thread.
///
/// Environment overrides: `LOOM_MAX_PREEMPTIONS` (default 2),
/// `LOOM_MAX_ITERS` (default 4000), `LOOM_MAX_STEPS` (default 50000),
/// `LOOM_LOG=1` prints a per-model exploration summary.
pub(crate) fn model_impl<F: Fn()>(f: F) {
    assert!(ctx().is_none(), "nested loom::model calls are not supported");
    install_quiet_hook();
    let limits = Limits {
        max_preemptions: env_usize("LOOM_MAX_PREEMPTIONS", 2),
        max_iterations: env_usize("LOOM_MAX_ITERS", 4000),
        max_steps: env_usize("LOOM_MAX_STEPS", 50_000),
    };
    let mut prefix: Vec<Choice> = Vec::new();
    let mut iterations = 0usize;
    let mut exhausted = false;
    loop {
        iterations += 1;
        let rt = Arc::new(Rt::new(limits, prefix.clone()));
        set_ctx(Some((Arc::clone(&rt), 0)));
        let main_result = panic::catch_unwind(AssertUnwindSafe(&f));
        set_ctx(None);

        // Tear down: cancel whatever is still parked, then join the real
        // OS threads of this execution.
        {
            let mut s = lock(&rt.sched);
            if let Err(p) = main_result {
                if !p.is::<Cancelled>() && s.failure.is_none() {
                    s.failure = Some(payload_msg(&p));
                }
                s.cancelled = true;
            } else if !s.cancelled
                && s.threads.iter().skip(1).any(|t| t.blocked != Blocked::Finished)
            {
                // Thread 0 is the driver itself and is never marked
                // Finished; only spawned model threads can leak.
                // Main returned while a model thread is still alive.
                if s.failure.is_none() {
                    s.failure =
                        Some("model closure returned with unjoined model threads".to_string());
                }
                s.cancelled = true;
            }
            rt.cv.notify_all();
        }
        for h in lock(&rt.handles).drain(..) {
            let _ = h.join();
        }

        let (failure, choices) = {
            let s = lock(&rt.sched);
            (s.failure.clone(), s.choices.clone())
        };
        if let Some(msg) = failure {
            let schedule: Vec<usize> = choices.iter().map(|c| c.taken).collect();
            panic!(
                "loom model failed on iteration {iterations} \
                 (schedule {schedule:?}, {} choice points):\n{msg}",
                choices.len()
            );
        }

        // Depth-first backtrack: advance the deepest choice that still has
        // unexplored options.
        let mut next = choices;
        loop {
            match next.pop() {
                None => {
                    exhausted = true;
                    break;
                }
                Some(c) if c.taken + 1 < c.options => {
                    next.push(Choice { taken: c.taken + 1, options: c.options });
                    break;
                }
                Some(_) => {}
            }
        }
        if exhausted {
            break;
        }
        prefix = next;
        if iterations >= limits.max_iterations {
            break;
        }
    }
    if std::env::var("LOOM_LOG").is_ok() {
        eprintln!(
            "loom: explored {iterations} executions ({})",
            if exhausted { "state space exhausted" } else { "iteration cap reached" }
        );
    }
}
