//! Synchronization shims: model-checked inside [`crate::model`],
//! plain `std`-backed outside it.
//!
//! The `Mutex`/`Condvar` API mirrors the workspace's `parking_lot` shim
//! (guard-returning `lock`, `wait_for` on `&mut` guard) so the `nm-sync`
//! facade can re-export either unchanged.

use crate::rt;
use std::mem::ManuallyDrop;
use std::sync::Arc as StdArc;
use std::time::Duration;

pub use std::sync::Arc;

pub mod atomic;

fn addr_of<T: ?Sized>(v: &T) -> usize {
    v as *const T as *const () as usize
}

/// A mutex whose `lock` returns the guard directly (no poisoning).
/// Inside the model, acquisition order is a scheduler choice; outside,
/// it delegates to `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    /// The real guard; wrapped so the condvar-wait dance can drop and
    /// re-take it in place.
    inner: ManuallyDrop<std::sync::MutexGuard<'a, T>>,
    /// Back-reference for model bookkeeping (`None` outside the model).
    model: Option<(StdArc<rt::Rt>, usize, usize)>, // (rt, tid, mutex addr)
    lock: &'a std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    fn real_lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match rt::ctx() {
            None => MutexGuard {
                inner: ManuallyDrop::new(self.real_lock()),
                model: None,
                lock: &self.inner,
            },
            Some((rt, me)) => {
                let addr = addr_of(self);
                rt.mutex_lock(me, addr);
                // Model ownership is exclusive, so the real lock is
                // uncontended; a blocking lock() would still be correct
                // but try_lock asserts the serialization invariant.
                let g = self
                    .inner
                    .try_lock()
                    .unwrap_or_else(|_| panic!("loom shim: model mutex contended for real"));
                MutexGuard {
                    inner: ManuallyDrop::new(g),
                    model: Some((rt, me, addr)),
                    lock: &self.inner,
                }
            }
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match rt::ctx() {
            None => match self.inner.try_lock() {
                Ok(g) => {
                    Some(MutexGuard { inner: ManuallyDrop::new(g), model: None, lock: &self.inner })
                }
                Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                    inner: ManuallyDrop::new(p.into_inner()),
                    model: None,
                    lock: &self.inner,
                }),
                Err(std::sync::TryLockError::WouldBlock) => None,
            },
            Some((rt, me)) => {
                let addr = addr_of(self);
                if !rt.mutex_try_lock(me, addr) {
                    return None;
                }
                let g = self
                    .inner
                    .try_lock()
                    .unwrap_or_else(|_| panic!("loom shim: model mutex contended for real"));
                Some(MutexGuard {
                    inner: ManuallyDrop::new(g),
                    model: Some((rt, me, addr)),
                    lock: &self.inner,
                })
            }
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: the guard is dropped exactly once here; `inner` is live
        // (every code path that takes it out writes a replacement back).
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        if let Some((rt, me, addr)) = self.model.take() {
            rt.mutex_unlock(me, addr);
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed. In the
    /// model, "the timeout elapsed" means the scheduler fired the timeout
    /// to break an otherwise-deadlocked state — the only moment logical
    /// time can be said to pass.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    fn wait_impl<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timed: bool,
    ) -> WaitTimeoutResult {
        match &guard.model {
            None => unreachable!("wait_impl requires a model guard"),
            Some((rt, me, addr)) => {
                let (rt, me, addr) = (StdArc::clone(rt), *me, *addr);
                // SAFETY: `inner` is live; we take the real guard out,
                // drop it (the model releases ownership separately), and
                // before returning we write a freshly acquired guard back,
                // so the ManuallyDrop slot is never observed empty.
                unsafe {
                    ManuallyDrop::drop(&mut guard.inner);
                }
                let timed_out = rt.condvar_wait(me, addr_of(self), addr, timed);
                rt.mutex_lock(me, addr);
                let g = guard
                    .lock
                    .try_lock()
                    .unwrap_or_else(|_| panic!("loom shim: model mutex contended for real"));
                guard.inner = ManuallyDrop::new(g);
                WaitTimeoutResult(timed_out)
            }
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        match &guard.model {
            None => {
                replace_real_guard(guard, |g| match self.inner.wait(g) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                });
            }
            Some(_) => {
                self.wait_impl(guard, false);
            }
        }
    }

    /// Blocks until notified or `timeout` elapsed.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        match &guard.model {
            None => {
                let mut timed_out = false;
                replace_real_guard(guard, |g| {
                    let (g, res) = match self.inner.wait_timeout(g, timeout) {
                        Ok(pair) => pair,
                        Err(p) => p.into_inner(),
                    };
                    timed_out = res.timed_out();
                    g
                });
                WaitTimeoutResult(timed_out)
            }
            Some(_) => self.wait_impl(guard, true),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        match rt::ctx() {
            None => {
                self.inner.notify_one();
            }
            Some((rt, me)) => rt.notify_one(me, addr_of(self)),
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        match rt::ctx() {
            None => {
                self.inner.notify_all();
            }
            Some((rt, me)) => rt.notify_all(me, addr_of(self)),
        }
    }
}

/// Round-trips the real guard through a guard-consuming operation (the
/// same `ManuallyDrop` dance as the workspace `parking_lot` shim).
fn replace_real_guard<'a, T: ?Sized>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    // SAFETY: the slot holds a live guard; we move it out, transform it,
    // and write the replacement back before anyone can observe the hole.
    // `f` (std's condvar wait) only panics before re-locking, when the
    // guard it was passed has already been consumed by unlocking, so no
    // double drop is possible on the unwind path either.
    unsafe {
        let guard = ManuallyDrop::take(&mut slot.inner);
        let new_guard = f(guard);
        slot.inner = ManuallyDrop::new(new_guard);
    }
}
