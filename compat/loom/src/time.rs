//! Logical time for the model: `Instant::now()` advances a per-execution
//! counter by one "nanosecond" per observation, so deadline arithmetic
//! stays monotonic but wall-clock timeouts effectively never fire inside
//! a model (timeouts are modeled by the scheduler's deadlock-breaking
//! timed-wait rule instead). Outside the model it is a real
//! `std::time::Instant`.

use crate::rt;
use std::time::Duration;

/// Dual real/model instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instant {
    /// A real point in time (outside the model).
    Real(std::time::Instant),
    /// A logical tick (inside the model).
    Model(u64),
}

impl Instant {
    /// The current instant.
    pub fn now() -> Self {
        match rt::ctx() {
            None => Instant::Real(std::time::Instant::now()),
            Some((rt, _)) => Instant::Model(rt.now()),
        }
    }

    /// Time elapsed since this instant.
    pub fn elapsed(&self) -> Duration {
        match self {
            Instant::Real(t) => t.elapsed(),
            Instant::Model(t) => match rt::ctx() {
                Some((rt, _)) => Duration::from_nanos(rt.clock().saturating_sub(*t)),
                None => Duration::ZERO,
            },
        }
    }

    /// Duration since an earlier instant (zero if `earlier` is later).
    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        match (self, earlier) {
            (Instant::Real(a), Instant::Real(b)) => a.saturating_duration_since(b),
            (Instant::Model(a), Instant::Model(b)) => Duration::from_nanos(a.saturating_sub(b)),
            _ => panic!("loom shim: mixed real/model Instant arithmetic"),
        }
    }
}

impl std::ops::Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        match self {
            Instant::Real(t) => Instant::Real(t + rhs),
            Instant::Model(t) => {
                Instant::Model(t.saturating_add(u64::try_from(rhs.as_nanos()).unwrap_or(u64::MAX)))
            }
        }
    }
}

impl PartialOrd for Instant {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Instant {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (self, other) {
            (Instant::Real(a), Instant::Real(b)) => a.cmp(b),
            (Instant::Model(a), Instant::Model(b)) => a.cmp(b),
            _ => panic!("loom shim: mixed real/model Instant comparison"),
        }
    }
}
