//! Thread shims: model threads inside [`crate::model`], real `std`
//! threads outside it (dual-mode, so loom-built code still runs normally
//! in ordinary tests and doctests).

use crate::rt;
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

enum Inner<T> {
    Real(std::thread::JoinHandle<T>),
    Model { rt: Arc<rt::Rt>, tid: usize, slot: Arc<StdMutex<Option<std::thread::Result<T>>>> },
}

/// Join handle for [`spawn`].
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result (`Err` holds
    /// the panic payload, mirroring `std`).
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Real(h) => h.join(),
            Inner::Model { rt, tid, slot } => {
                let me = rt::ctx().expect("model JoinHandle joined outside the model").1;
                rt.join(me, tid);
                match match slot.lock() {
                    Ok(mut g) => g.take(),
                    Err(p) => p.into_inner().take(),
                } {
                    Some(r) => r,
                    // The thread unwound without storing a value (it
                    // panicked / was cancelled). Surface an Err rather
                    // than panicking here — join often runs inside Drop
                    // during teardown, where a second panic would abort.
                    None => Err(Box::new(rt::Cancelled)),
                }
            }
        }
    }
}

fn spawn_impl<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::ctx() {
        None => JoinHandle { inner: Inner::Real(std::thread::spawn(f)) },
        Some((rt, me)) => {
            let slot: Arc<StdMutex<Option<std::thread::Result<T>>>> = Arc::new(StdMutex::new(None));
            let slot2 = Arc::clone(&slot);
            let tid = rt.spawn(
                me,
                Box::new(move || {
                    // The rt wrapper catches panics around this closure and
                    // records them; store the value for join(). A panic
                    // unwinds past this store and is reported by the
                    // wrapper, so the slot stays None — join() then cannot
                    // run because the model is being cancelled.
                    let value = f();
                    match slot2.lock() {
                        Ok(mut g) => *g = Some(Ok(value)),
                        Err(p) => *p.into_inner() = Some(Ok(value)),
                    }
                }),
            );
            JoinHandle { inner: Inner::Model { rt, tid, slot } }
        }
    }
}

/// Spawns a thread (a model thread when called inside `loom::model`).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_impl(f)
}

/// Cooperatively yields: a forced (non-branching) scheduler switch in the
/// model, `std::thread::yield_now` outside it.
pub fn yield_now() {
    match rt::ctx() {
        None => std::thread::yield_now(),
        Some((rt, me)) => rt.forced_yield(me),
    }
}

/// Sleeping in the model is just a yield — model time is logical.
pub fn sleep(dur: Duration) {
    match rt::ctx() {
        None => std::thread::sleep(dur),
        Some((rt, me)) => rt.forced_yield(me),
    }
}

/// Mirror of `std::thread::Builder` (the name is kept for diagnostics
/// only in the model).
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// A new builder.
    pub fn new() -> Self {
        Builder { name: None }
    }

    /// Names the thread.
    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    /// Spawns the thread.
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match rt::ctx() {
            None => {
                let mut b = std::thread::Builder::new();
                if let Some(n) = self.name {
                    b = b.name(n);
                }
                b.spawn(f).map(|h| JoinHandle { inner: Inner::Real(h) })
            }
            Some(_) => Ok(spawn_impl(f)),
        }
    }
}
