//! Work-stealing deque shim: same API shape as `crossbeam::deque`, backed
//! by `Mutex<VecDeque>` (correct under contention, not lock-free).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// Nothing to steal.
    Empty,
    /// A value was stolen.
    Success(T),
    /// Contention; retry.
    Retry,
}

impl<T> Steal<T> {
    /// True when the attempt should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// The stolen value, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

/// A worker's local queue.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// A FIFO worker queue.
    pub fn new_fifo() -> Self {
        Worker { queue: Arc::new(Mutex::new(VecDeque::new())) }
    }

    /// A LIFO worker queue (this shim treats it as FIFO for pops from the
    /// owner side order; adequate for scheduling correctness).
    pub fn new_lifo() -> Self {
        Self::new_fifo()
    }

    /// A handle others use to steal from this queue.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { queue: self.queue.clone() }
    }

    /// Pushes to the local end.
    pub fn push(&self, value: T) {
        lock(&self.queue).push_back(value);
    }

    /// Pops from the local end.
    pub fn pop(&self) -> Option<T> {
        lock(&self.queue).pop_front()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }
}

/// Handle for stealing from a [`Worker`].
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer { queue: self.queue.clone() }
    }
}

impl<T> Stealer<T> {
    /// Steals one item from the far end.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }
}

/// A shared injector queue.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// An empty injector.
    pub fn new() -> Self {
        Injector { queue: Mutex::new(VecDeque::new()) }
    }

    /// Pushes a task for any worker.
    pub fn push(&self, value: T) {
        lock(&self.queue).push_back(value);
    }

    /// Steals one item.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Moves a batch into `dest`'s local queue and pops one item.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = lock(&self.queue);
        let first = match q.pop_front() {
            Some(v) => v,
            None => return Steal::Empty,
        };
        // Move up to half of the remainder (capped) into the destination.
        let batch = (q.len() / 2).min(16);
        if batch > 0 {
            let mut dq = lock(&dest.queue);
            for _ in 0..batch {
                match q.pop_front() {
                    Some(v) => dq.push_back(v),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_push_pop_fifo() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_from_worker() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(7);
        assert_eq!(s.steal().success(), Some(7));
        assert!(matches!(s.steal(), Steal::Empty));
    }

    #[test]
    fn injector_batch_refills_worker() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        let first = inj.steal_batch_and_pop(&w);
        assert_eq!(first.success(), Some(0));
        assert!(!w.is_empty(), "batch must land in the worker queue");
        // Everything is eventually retrievable exactly once.
        let mut got = vec![0];
        while let Some(v) = w.pop() {
            got.push(v);
        }
        while let Steal::Success(v) = inj.steal() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
