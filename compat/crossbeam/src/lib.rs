//! Minimal API-compatible shim for the `crossbeam` crate surface this
//! workspace uses. Vendored because the build environment has no registry
//! access. Functionally equivalent, not lock-free: channels wrap
//! `std::sync::mpsc` (with a `Mutex` around the receiver so `Receiver` is
//! clonable and `Sync`), deques wrap `Mutex<VecDeque>`.

pub mod channel;
pub mod deque;
