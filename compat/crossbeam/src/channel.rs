//! MPMC channel shim over `std::sync::mpsc`.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

/// Sending half; clonable.
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender { inner: self.inner.clone() }
    }
}

impl<T> Sender<T> {
    /// Sends a value; errors when all receivers are gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner.send(value)
    }
}

/// Receiving half; clonable (consumers compete for values).
pub struct Receiver<T> {
    inner: Arc<Mutex<mpsc::Receiver<T>>>,
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver { inner: self.inner.clone() }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.recv()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.try_recv()
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.recv_timeout(timeout)
    }

    /// Drains currently available values without blocking.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }
}

/// Iterator over immediately-available values.
pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: Arc::new(Mutex::new(rx)) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let h = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_is_reported() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
    }
}
