//! Minimal API-compatible shim for the `criterion` crate surface this
//! workspace uses. Vendored because the build environment has no registry
//! access.
//!
//! Measurement model: warm up briefly, size the iteration count so one
//! sample takes a few milliseconds, take `sample_size` samples, report the
//! median ns/iter (median resists scheduler noise better than the mean in
//! a shared container). Results are printed and appended as JSON lines to
//! `target/criterion-compat.jsonl` so perf trajectories can be scripted.

pub use std::hint::black_box;

use std::fmt::{self, Display};
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{name}/{parameter}") }
    }

    /// Builds from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Times closures.
pub struct Bencher {
    target_sample: Duration,
    samples: usize,
    /// Median nanoseconds per iteration, filled by `iter`.
    pub(crate) measured_ns: f64,
}

impl Bencher {
    /// Measures `f`, storing the median ns/iteration.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up and calibration: how many iterations fit the target time?
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let iters = (self.target_sample.as_nanos() / once.as_nanos()).clamp(1, 1 << 24) as u64;
        let mut sample_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            sample_ns.push(elapsed.as_nanos() as f64 / iters as f64);
        }
        sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        self.measured_ns = sample_ns[sample_ns.len() / 2];
    }

    /// `iter` variant receiving the batch size (compat; runs like `iter`).
    pub fn iter_with_large_drop<O>(&mut self, f: impl FnMut() -> O) {
        self.iter(f);
    }
}

fn results_path() -> PathBuf {
    // target/ relative to the workspace the bench runs in.
    let mut p = std::env::current_exe()
        .ok()
        .and_then(|exe| {
            exe.ancestors()
                .find(|a| a.file_name().map(|n| n == "target").unwrap_or(false))
                .map(PathBuf::from)
        })
        .unwrap_or_else(|| PathBuf::from("target"));
    p.push("criterion-compat.jsonl");
    p
}

fn record(group: &str, id: &str, ns: f64, throughput: Option<Throughput>) {
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 * 1e9 / ns;
            format!("  {:>12.0} elem/s", per_sec)
        }
        Some(Throughput::Bytes(n)) => {
            let mib_s = n as f64 * 1e9 / ns / (1024.0 * 1024.0);
            format!("  {:>10.1} MiB/s", mib_s)
        }
        None => String::new(),
    };
    println!("bench {group}/{id:<44} {ns:>12.1} ns/iter{thrpt}");
    let json = format!("{{\"group\":{:?},\"id\":{:?},\"ns_per_iter\":{ns:.2}}}\n", group, id);
    if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(results_path()) {
        let _ = f.write_all(json.as_bytes());
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Sets per-iteration throughput units.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compat; this shim ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compat; this shim ignores it.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            target_sample: Duration::from_millis(5),
            samples: self.sample_size,
            measured_ns: f64::NAN,
        };
        f(&mut b);
        record(&self.name, &id.name, b.measured_ns, self.throughput);
        self
    }

    /// Runs a benchmark receiving an input reference.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut g =
            BenchmarkGroup { name: "default".to_string(), sample_size: 10, throughput: None };
        g.bench_function(id, f);
        self
    }

    /// Compat: configuration hook.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

impl fmt::Debug for Criterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Criterion")
    }
}

/// Declares a benchmark group function list.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; measuring
            // under the test harness is meaningless, so bail out fast.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
