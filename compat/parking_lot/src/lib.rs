//! Minimal API-compatible shim for the `parking_lot` crate, backed by
//! `std::sync`. Vendored because this build environment has no registry
//! access; only the surface this workspace uses is provided.
//!
//! Semantics match `parking_lot` where it matters here: `lock()` returns a
//! guard directly (poisoning is swallowed — a panicking thread does not
//! poison the lock for everyone else).

use std::sync::{self, TryLockError};
use std::time::{Duration, Instant};

/// A mutex whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Blocks until notified or `timeout` elapsed.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, res) = match self.inner.wait_timeout(g, timeout) {
                Ok(pair) => pair,
                Err(p) => p.into_inner(),
            };
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Blocks until notified or `deadline` passed.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Applies a guard-consuming operation through an `&mut` slot. The
/// temporary `ManuallyDrop` dance keeps the borrow checker satisfied while
/// the guard round-trips through `Condvar::wait`.
fn replace_guard<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // SAFETY: `slot` is a valid guard; we move it out, transform it, and
    // write the replacement back before anyone can observe the hole. `f`
    // (std's condvar wait) either returns a guard or panics; on panic the
    // process is already unwinding through a poisoned-lock path where the
    // duplicate drop cannot occur because `ptr::read`'s copy is forgotten
    // only on the success path — std's wait only panics before re-locking,
    // when the guard it was passed has already been dropped by unlocking.
    unsafe {
        let guard = std::ptr::read(slot);
        let new_guard = f(guard);
        std::ptr::write(slot, new_guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_signalling() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            *done = true;
            c.notify_one();
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            let res = c.wait_for(&mut done, Duration::from_secs(5));
            assert!(!res.timed_out(), "signal must arrive");
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let res = c.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
